// Multicast groups: zone-based sensing.
//
// The field is divided into four quadrant "zones"; each sensor joins the
// group of its quadrant, and a fifth group collects every cluster-head
// (a control-plane group). The sink multicasts zone-specific commands
// and we compare the cost against a full broadcast — the paper's §3.4
// claim that relay-list pruning excludes unrelated subtrees.
//
//   $ ./examples/multicast_groups
#include <iostream>

#include "core/sensor_network.hpp"

int main() {
  using namespace dsn;

  NetworkConfig cfg;
  cfg.nodeCount = 300;
  cfg.seed = 99;
  SensorNetwork net(cfg);

  constexpr GroupId kZoneBase = 10;  // zones 10..13
  constexpr GroupId kHeads = 42;

  const double midX = cfg.field.width / 2;
  const double midY = cfg.field.height / 2;
  std::size_t zoneSizes[4] = {0, 0, 0, 0};
  for (NodeId v : net.clusterNet().netNodes()) {
    const auto& p = net.position(v);
    const int zone = (p.x >= midX ? 1 : 0) + (p.y >= midY ? 2 : 0);
    net.joinGroup(v, kZoneBase + static_cast<GroupId>(zone));
    ++zoneSizes[zone];
    if (net.clusterNet().status(v) == NodeStatus::kClusterHead)
      net.joinGroup(v, kHeads);
  }

  const NodeId sink = net.clusterNet().root();
  const auto broadcastRun =
      net.broadcast(BroadcastScheme::kImprovedCff, sink, 0);
  std::cout << "Full broadcast reference: " << broadcastRun.transmissions
            << " transmissions, " << broadcastRun.sim.rounds
            << " rounds.\n\n";

  std::cout
      << "group      members  tx(pruned)  tx(flood)  coverage  rounds\n";
  for (int zone = 0; zone < 4; ++zone) {
    const GroupId g = kZoneBase + static_cast<GroupId>(zone);
    const auto pruned =
        net.multicast(sink, g, 1, MulticastMode::kPrunedRelay);
    const auto flood = net.multicast(sink, g, 1, MulticastMode::kFullFlood);
    std::cout << "  zone-" << zone << "     " << zoneSizes[zone] << "\t"
              << pruned.transmissions << "\t    " << flood.transmissions
              << "\t  " << pruned.coverage() * 100 << "%\t"
              << pruned.sim.rounds << "\n";
  }
  const auto headsRun =
      net.multicast(sink, kHeads, 1, MulticastMode::kPrunedRelay);
  std::cout << "  heads      " << net.clusterNet().clusterCount() << "\t"
            << headsRun.transmissions << "\t    -\t  "
            << headsRun.coverage() * 100 << "%\t" << headsRun.sim.rounds
            << "\n";

  std::cout << "\nZone multicasts prune the three unrelated quadrants'\n"
               "subtrees; the heads-group multicast finishes within the\n"
               "backbone flood (heads receive in step 1).\n";
  return 0;
}
