// Quickstart: deploy a paper-scale sensor network, inspect the
// self-constructed cluster architecture, and run one broadcast with each
// protocol.
//
//   $ ./examples/quickstart [nodes] [seed]
#include <cstdlib>
#include <iostream>

#include "core/sensor_network.hpp"

int main(int argc, char** argv) {
  using namespace dsn;

  NetworkConfig cfg;
  cfg.nodeCount = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 300;
  cfg.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2007;
  // Paper defaults: 10x10 field of 100 m units, 50 m radio range.

  std::cout << "Deploying " << cfg.nodeCount
            << " sensors on a 1 km x 1 km field (seed " << cfg.seed
            << ")...\n";
  SensorNetwork net(cfg);

  const auto report = net.validate();
  std::cout << "Structure valid: " << (report.ok() ? "yes" : "NO") << "\n";

  const auto s = net.stats();
  std::cout << "Cluster architecture:\n"
            << "  clusters (heads) : " << s.clusterCount << "\n"
            << "  backbone |BT(G)| : " << s.backboneSize << "\n"
            << "  backbone height  : " << s.backboneHeight << "\n"
            << "  CNet height h    : " << s.cnetHeight << "\n"
            << "  max degree D     : " << s.degreeG << "\n"
            << "  backbone degree d: " << s.degreeBackbone << "\n"
            << "  largest l-slot Δ : " << s.maxLSlot
            << "  (Lemma 3 bound " << s.lSlotBound() << ")\n"
            << "  largest b-slot δ : " << s.maxBSlot
            << "  (Lemma 3 bound " << s.bSlotBound() << ")\n\n";

  Rng rng(cfg.seed);
  const NodeId source = net.randomNode(rng);
  std::cout << "Broadcasting from node " << source << " (depth "
            << net.clusterNet().depth(source) << ")...\n\n";

  std::cout << "protocol   rounds  max-awake  transmissions  coverage\n";
  for (auto scheme : {BroadcastScheme::kDfo, BroadcastScheme::kCff,
                      BroadcastScheme::kImprovedCff}) {
    const auto run = net.broadcast(scheme, source, /*payload=*/0xDA7A);
    std::cout << "  " << toString(scheme) << "\t     " << run.sim.rounds
              << "\t  " << run.maxAwakeRounds << "\t       "
              << run.transmissions << "\t     " << run.coverage() * 100
              << "%\n";
  }

  std::cout << "\nThe paper's claim in one line: the collision-free\n"
               "flooding schemes finish in a few TDM windows while the\n"
               "depth-first token tour pays ~2 rounds per backbone node\n"
               "and keeps every node listening until the token passes.\n";
  return 0;
}
