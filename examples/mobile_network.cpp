// Mobile sensor network: random-waypoint nodes under a live broadcast
// workload.
//
// A subset of sensors is mounted on patrol vehicles; each tick they
// move, the structure reconfigures (withdraw + rejoin at the new spot),
// and the sink broadcasts a fresh command. Nodes that wander out of
// radio reach drop off the net and rejoin when they come back.
//
//   $ ./examples/mobile_network [ticks]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <vector>

#include "core/mobility.hpp"
#include "core/sensor_network.hpp"

int main(int argc, char** argv) {
  using namespace dsn;

  const int ticks = argc > 1 ? std::atoi(argv[1]) : 25;

  NetworkConfig cfg;
  cfg.nodeCount = 200;
  cfg.seed = 8128;
  SensorNetwork net(cfg);
  Rng rng(99);

  // A fifth of the fleet is mobile, 30 m per tick.
  std::vector<NodeId> mobile;
  for (NodeId v : net.clusterNet().netNodes())
    if (rng.chance(0.2)) mobile.push_back(v);
  RandomWaypointMobility walker(cfg.field, 30.0, 4242);

  std::cout << mobile.size() << " of " << net.size()
            << " sensors are mobile\n\n"
            << "tick  in-net  moved  rejoined  bcast-coverage  rounds\n";

  for (int tick = 0; tick < ticks; ++tick) {
    int rejoined = 0;
    for (NodeId v : mobile) {
      const Point2D next = walker.advance(v, net.position(v));
      if (net.moveSensor(v, next)) ++rejoined;
    }
    const auto report = net.validate();
    if (!report.ok()) {
      std::cerr << "INVARIANT VIOLATION at tick " << tick << ":\n"
                << report.summary() << "\n";
      return 1;
    }

    const auto run = net.broadcast(BroadcastScheme::kImprovedCff,
                                   net.clusterNet().root(), 0xC0DE);
    std::cout << std::setw(4) << tick << std::setw(8)
              << net.clusterNet().netSize() << std::setw(7)
              << mobile.size() << std::setw(10) << rejoined
              << std::setw(15) << std::fixed << std::setprecision(3)
              << run.coverage() << std::setw(8) << run.sim.rounds
              << "\n";
  }

  std::cout << "\nStructure stayed valid for " << ticks
            << " ticks of motion; every broadcast reached every node\n"
               "currently inside the net.\n";
  return 0;
}
