// Data gathering: periodic sensor readings aggregated to the sink.
//
// Every epoch the sink triggers a convergecast wave: each node reports
// its reading, parents aggregate sums and counts on the way up, and the
// sink ends up with the exact field mean — in h·W rounds with every node
// awake for at most ~2W rounds (W = largest up-slot). A mid-run node
// failure shows the yield accounting: the dead subtree's readings are
// missing and the sink knows exactly how many contributors it heard.
//
//   $ ./examples/data_gathering
#include <iomanip>
#include <iostream>

#include "broadcast/convergecast.hpp"
#include "core/sensor_network.hpp"

int main() {
  using namespace dsn;

  NetworkConfig cfg;
  cfg.nodeCount = 250;
  cfg.seed = 314;
  SensorNetwork net(cfg);
  Rng rng(15);

  std::cout << "Gather window W = " << net.clusterNet().rootMaxUpSlot()
            << " slots, tree height h = " << net.clusterNet().height()
            << "\n\n";

  std::cout << "epoch  yield   mean-reading  rounds  max-awake\n";
  for (int epoch = 0; epoch < 6; ++epoch) {
    // Synthetic readings: a field gradient plus noise.
    std::vector<std::uint64_t> readings(net.graph().size(), 0);
    for (NodeId v : net.clusterNet().netNodes()) {
      const auto& p = net.position(v);
      readings[v] = static_cast<std::uint64_t>(
          20.0 + p.x / 50.0 + rng.uniformReal(0, 5));
    }

    ProtocolOptions opts;
    if (epoch == 3) {
      // A relay dies mid-epoch 3: part of the field goes dark.
      for (NodeId v : net.clusterNet().backboneNodes()) {
        if (net.clusterNet().depth(v) == 2 &&
            !net.clusterNet().children(v).empty()) {
          opts.deaths.emplace_back(v, 0);
          break;
        }
      }
    }

    const auto result =
        runConvergecast(net.clusterNet(), readings, opts);
    const double mean =
        result.contributors
            ? static_cast<double>(result.aggregate) /
                  static_cast<double>(result.contributors)
            : 0.0;
    std::cout << std::setw(5) << epoch << std::setw(7) << std::fixed
              << std::setprecision(2) << result.yield() << std::setw(14)
              << mean << std::setw(8) << result.sim.rounds
              << std::setw(10) << result.maxAwakeRounds
              << (epoch == 3 ? "   <- relay failure" : "") << "\n";
  }

  std::cout << "\nThe sink always knows its yield: sums and contributor\n"
               "counts ride together, so partial waves never silently\n"
               "skew the mean.\n";
  return 0;
}
