// Topology inspector: dump the self-constructed architecture as
// Graphviz and a text digest, then watch it reconfigure.
//
//   $ ./examples/topology_inspector > cnet.dot && dot -Tpng cnet.dot ...
//   (the digest and the churn log go to stderr so stdout stays pure dot)
#include <iostream>

#include "cluster/export.hpp"
#include "core/sensor_network.hpp"

int main(int argc, char** argv) {
  using namespace dsn;

  NetworkConfig cfg;
  cfg.nodeCount = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;
  cfg.seed = 5;
  SensorNetwork net(cfg);

  std::cerr << toSummary(net.clusterNet()) << "\n";

  // A quick churn episode, digest after each step.
  Rng rng(6);
  for (int i = 0; i < 5; ++i) {
    const NodeId victim = net.randomNode(rng);
    const auto report = net.removeSensor(victim);
    std::cerr << "moveOut(" << victim << "): |T|=" << report.subtreeSize
              << " orphans=" << report.orphaned
              << " repairs=" << report.conditionRepairs
              << " rounds=" << report.cost.total() << "\n";
    std::cerr << toSummary(net.clusterNet()) << "\n";
  }

  std::cerr << "\nwindow compaction: " << net.clusterNet().compactSlots()
            << " metered rounds\n"
            << toSummary(net.clusterNet()) << "\n";

  // Machine-readable artifact on stdout.
  std::cout << toDot(net.clusterNet());
  return 0;
}
