// ThreadPool semantics: execution, wait(), exception discipline, and
// shutdown with work still queued.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>

#include "exec/thread_pool.hpp"
#include "util/error.hpp"

namespace dsn::exec {
namespace {

TEST(ResolveJobsTest, PositivePassesThroughElseAuto) {
  EXPECT_EQ(resolveJobs(1), 1u);
  EXPECT_EQ(resolveJobs(8), 8u);
  EXPECT_GE(resolveJobs(0), 1u);   // auto: at least one worker
  EXPECT_GE(resolveJobs(-3), 1u);  // negative is also "auto"
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threadCount(), 4u);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&done] { done.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, WaitBlocksUntilQueueDrains) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i)
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    });
  pool.wait();
  EXPECT_EQ(done.load(), 8);
  // The pool stays usable after wait().
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(done.load(), 9);
}

TEST(ThreadPoolTest, TaskExceptionDoesNotKillPool) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.submit([] { throw std::runtime_error("task boom"); });
  for (int i = 0; i < 10; ++i)
    pool.submit([&done] { done.fetch_add(1); });
  // wait() rethrows the first stored error once everything finished...
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // ...but the other tasks still ran and the pool still serves.
  EXPECT_EQ(done.load(), 10);
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait();  // error was consumed by the previous wait()
  EXPECT_EQ(done.load(), 11);
}

TEST(ThreadPoolTest, DestructorJoinsWithTasksStillQueued) {
  std::atomic<int> done{0};
  std::atomic<bool> started{false};
  {
    ThreadPool pool(1);
    // One slow task holds the single worker; the rest sit in the queue
    // when the destructor runs and may be discarded — the destructor
    // must still join cleanly without running them all.
    pool.submit([&] {
      started = true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      done.fetch_add(1);
    });
    for (int i = 0; i < 50; ++i)
      pool.submit([&done] { done.fetch_add(1); });
    // Make sure the slow task is actually in flight before destruction,
    // otherwise even it may legitimately be discarded.
    while (!started)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The in-flight task completed; queued tasks were at most partially run.
  EXPECT_GE(done.load(), 1);
  EXPECT_LE(done.load(), 51);
}

TEST(ThreadPoolTest, DestructorSwallowsStoredException) {
  // A pool destroyed while holding a task error must not terminate.
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("unseen boom"); });
  // No wait(): destructor drains and swallows.
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  auto pool = std::make_unique<ThreadPool>(1);
  ThreadPool& ref = *pool;
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  ref.submit([&] {
    started = true;
    while (!release) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  while (!started) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::thread destroyer([&] { pool.reset(); });
  // The destructor is blocked joining the spinning worker; poll until it
  // has flipped the shutdown flag and submit starts rejecting.
  bool threw = false;
  for (int i = 0; i < 5000 && !threw; ++i) {
    try {
      ref.submit([] {});  // discarded by the destructor if accepted
    } catch (const PreconditionError&) {
      threw = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(threw);
  release = true;
  destroyer.join();
}

}  // namespace
}  // namespace dsn::exec
