// Determinism contract of the parallel experiment engine: tables,
// telemetry and error propagation are independent of the jobs count.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "exec/parallel_sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"

namespace dsn {
namespace {

// A probe exercising a real protocol run plus explicit instrumentation,
// so both the MetricTable path and the obs merge path are covered.
void broadcastProbe(SensorNetwork& net, Rng& rng, MetricTable& t) {
  const auto run =
      net.broadcast(BroadcastScheme::kImprovedCff, net.randomNode(rng), 1);
  t.add("rounds", static_cast<double>(run.sim.rounds));
  t.add("coverage", run.coverage());
  auto& reg = obs::globalMetrics();
  reg.counter("test.trials").increment();
  reg.gauge("test.last_rounds").set(static_cast<double>(run.sim.rounds));
  reg.histogram("test.rounds", obs::Histogram::exponentialBounds(8))
      .observe(static_cast<double>(run.sim.rounds));
}

void expectSameTable(const MetricTable& a, const MetricTable& b) {
  ASSERT_EQ(a.names(), b.names());
  for (const auto& name : a.names()) {
    const auto& va = a.samples(name).values();
    const auto& vb = b.samples(name).values();
    ASSERT_EQ(va.size(), vb.size()) << name;
    for (std::size_t i = 0; i < va.size(); ++i)
      EXPECT_DOUBLE_EQ(va[i], vb[i]) << name << "[" << i << "]";
  }
}

struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::string> histogramNames;
  std::vector<std::vector<std::uint64_t>> histogramCounts;
  std::vector<double> histogramSums;
};

RegistrySnapshot snapshotOf(const obs::MetricsRegistry& reg) {
  RegistrySnapshot s;
  s.counters = reg.counters();
  s.gauges = reg.gauges();
  for (const auto& [name, h] : reg.histograms()) {
    s.histogramNames.push_back(name);
    s.histogramCounts.push_back(h->bucketCounts());
    s.histogramSums.push_back(h->sum());
  }
  return s;
}

ExperimentConfig smallConfig() {
  ExperimentConfig cfg;
  cfg.trials = 4;
  cfg.nodeCounts = {40, 60};
  return cfg;
}

TEST(ParallelSweepTest, RunTrialsMatchesSerialReference) {
  const auto cfg = smallConfig();
  const MetricTable serial = runTrials(cfg, 60, broadcastProbe);
  const MetricTable par1 = exec::runTrials(cfg, 60, broadcastProbe, 1);
  const MetricTable par8 = exec::runTrials(cfg, 60, broadcastProbe, 8);
  expectSameTable(serial, par1);
  expectSameTable(serial, par8);
}

TEST(ParallelSweepTest, RunSweepMatchesSerialPerNodeCount) {
  const auto cfg = smallConfig();
  const auto sweep = exec::runSweep(cfg, broadcastProbe, 8);
  ASSERT_EQ(sweep.nodeCounts, cfg.nodeCounts);
  ASSERT_EQ(sweep.tables.size(), cfg.nodeCounts.size());
  EXPECT_EQ(sweep.workers, 8u);
  for (std::size_t i = 0; i < cfg.nodeCounts.size(); ++i) {
    const MetricTable serial =
        runTrials(cfg, cfg.nodeCounts[i], broadcastProbe);
    expectSameTable(serial, sweep.tables[i]);
    expectSameTable(serial, sweep.at(cfg.nodeCounts[i]));
  }
  EXPECT_THROW(sweep.at(999), PreconditionError);
}

TEST(ParallelSweepTest, TelemetryMergeIsIndependentOfJobs) {
  const auto cfg = smallConfig();
  // Capture each run's telemetry in a local registry via the thread
  // sink; worker-local registries merge back into it on the caller
  // thread, so nothing leaks into the process-wide registry.
  obs::MetricsRegistry reg1, reg8;
  {
    obs::ScopedMetricsSink sink(reg1);
    (void)exec::runSweep(cfg, broadcastProbe, 1);
  }
  {
    obs::ScopedMetricsSink sink(reg8);
    (void)exec::runSweep(cfg, broadcastProbe, 8);
  }
  const RegistrySnapshot s1 = snapshotOf(reg1);
  const RegistrySnapshot s8 = snapshotOf(reg8);
  EXPECT_EQ(s1.counters, s8.counters);
  EXPECT_EQ(s1.gauges, s8.gauges);  // last-write-wins in trial order
  EXPECT_EQ(s1.histogramNames, s8.histogramNames);
  EXPECT_EQ(s1.histogramCounts, s8.histogramCounts);
  // Sums fold per task in a fixed order, so they match bit-for-bit.
  EXPECT_EQ(s1.histogramSums, s8.histogramSums);
  const auto tasks =
      static_cast<std::uint64_t>(cfg.trials) * cfg.nodeCounts.size();
  ASSERT_FALSE(s1.counters.empty());
  for (const auto& [name, value] : s1.counters) {
    if (name == "test.trials") {
      EXPECT_EQ(value, tasks);
    }
  }
}

TEST(ParallelSweepTest, ForEachIndexMergesSinksInIndexOrder) {
  obs::MetricsRegistry reg;
  std::vector<double> slot(16, 0.0);
  {
    obs::ScopedMetricsSink sink(reg);
    exec::forEachIndex(slot.size(), 4, [&](std::size_t i) {
      slot[i] = static_cast<double>(i) * 2.0;
      obs::globalMetrics().counter("fei.calls").increment();
      obs::globalMetrics().gauge("fei.last").set(static_cast<double>(i));
    });
  }
  for (std::size_t i = 0; i < slot.size(); ++i)
    EXPECT_DOUBLE_EQ(slot[i], static_cast<double>(i) * 2.0);
  const auto counters = reg.counters();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].second, slot.size());
  // Gauges merge last-write-wins in index order: the highest index is
  // the final value no matter which worker ran it last in real time.
  const auto gauges = reg.gauges();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(gauges[0].second, static_cast<double>(slot.size() - 1));
}

TEST(ParallelSweepTest, ForEachIndexRethrowsLowestIndexError) {
  for (int jobs : {1, 8}) {
    std::string caught;
    try {
      exec::forEachIndex(8, jobs, [](std::size_t i) {
        if (i == 2 || i == 5)
          throw std::runtime_error("boom@" + std::to_string(i));
      });
    } catch (const std::runtime_error& ex) {
      caught = ex.what();
    }
    EXPECT_EQ(caught, "boom@2") << "jobs=" << jobs;
  }
}

TEST(ParallelSweepTest, SweepStatsAccountForRuns) {
  const auto before = exec::sweepStats();
  const auto cfg = smallConfig();
  (void)exec::runSweep(cfg, broadcastProbe, 2);
  const auto after = exec::sweepStats();
  EXPECT_EQ(after.sweeps, before.sweeps + 1);
  EXPECT_EQ(after.tasks,
            before.tasks + static_cast<std::uint64_t>(cfg.trials) *
                               cfg.nodeCounts.size());
  EXPECT_EQ(after.lastWorkers, 2u);
  EXPECT_GE(after.wallMs, before.wallMs);
}

}  // namespace
}  // namespace dsn
