#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace dsn {
namespace {

TEST(TableTest, PrintsTitleHeaderAndRows) {
  TablePrinter t("Demo", {"n", "rounds"});
  t.addRowValues({100, 42});
  t.addRowValues({200, 84.5});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("rounds"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("84.5"), std::string::npos);
  EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TableTest, RowWidthMismatchThrows) {
  TablePrinter t("Demo", {"a", "b"});
  EXPECT_THROW(t.addRow({"1"}), PreconditionError);
}

TEST(TableTest, EmptyHeaderThrows) {
  EXPECT_THROW(TablePrinter("x", {}), PreconditionError);
}

TEST(TableTest, FormatValueIntegersHaveNoDecimals) {
  EXPECT_EQ(TablePrinter::formatValue(7, 2), "7");
  EXPECT_EQ(TablePrinter::formatValue(7.25, 2), "7.25");
  EXPECT_EQ(TablePrinter::formatValue(7.26, 1), "7.3");
}

TEST(TableTest, ColumnsAreAligned) {
  TablePrinter t("Align", {"col", "value"});
  t.addRow({"a", "1"});
  t.addRow({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  // Header and every data row render right-aligned to the same width.
  std::istringstream in(os.str());
  std::string line;
  std::vector<std::string> rows;
  while (std::getline(in, line)) {
    if (line.empty() || line.rfind("==", 0) == 0 ||
        line.rfind("--", 0) == 0)
      continue;
    rows.push_back(line);
  }
  ASSERT_EQ(rows.size(), 3u);  // header + 2 data rows
  for (const auto& r : rows)
    EXPECT_EQ(r.size(), rows.front().size()) << "line: '" << r << "'";
}

}  // namespace
}  // namespace dsn
