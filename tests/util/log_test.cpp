// Leveled logger: level filtering, lazy argument evaluation, and the
// per-level convenience macros (DSN_LOG_ERROR regression — kError existed
// without a macro).
#include <gtest/gtest.h>

#include <sstream>

#include "util/log.hpp"

namespace dsn {
namespace {

/// Redirects std::cerr for the test's lifetime.
class CerrCapture {
 public:
  CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(old_); }
  std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

/// Restores the process-wide log level on scope exit.
class LevelGuard {
 public:
  LevelGuard() : saved_(logLevel()) {}
  ~LevelGuard() { setLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, ErrorMacroEmitsAtEveryLevel) {
  LevelGuard guard;
  setLogLevel(LogLevel::kError);  // most restrictive
  CerrCapture capture;
  DSN_LOG_ERROR << "disk on fire";
  EXPECT_NE(capture.text().find("ERROR"), std::string::npos);
  EXPECT_NE(capture.text().find("disk on fire"), std::string::npos);
}

TEST(LogTest, LevelFilteringDropsBelowThreshold) {
  LevelGuard guard;
  setLogLevel(LogLevel::kWarn);
  CerrCapture capture;
  DSN_LOG_ERROR << "e";
  DSN_LOG_WARN << "w";
  DSN_LOG_INFO << "i";
  DSN_LOG_DEBUG << "d";
  const std::string out = capture.text();
  EXPECT_NE(out.find("ERROR"), std::string::npos);
  EXPECT_NE(out.find("WARN"), std::string::npos);
  EXPECT_EQ(out.find("INFO"), std::string::npos);
  EXPECT_EQ(out.find("DEBUG"), std::string::npos);
}

TEST(LogTest, FilteredStatementsDoNotEvaluateArguments) {
  LevelGuard guard;
  setLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return "costly";
  };
  DSN_LOG_DEBUG << expensive();
  EXPECT_EQ(evaluations, 0);
  DSN_LOG_ERROR << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(LogTest, RaisingTheLevelEnablesDebug) {
  LevelGuard guard;
  setLogLevel(LogLevel::kDebug);
  CerrCapture capture;
  DSN_LOG_DEBUG << "verbose detail";
  EXPECT_NE(capture.text().find("DEBUG"), std::string::npos);
  EXPECT_NE(capture.text().find("verbose detail"), std::string::npos);
}

}  // namespace
}  // namespace dsn
