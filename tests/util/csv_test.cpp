#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace dsn {
namespace {

TEST(CsvTest, HeaderWrittenImmediately) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b"});
  EXPECT_EQ(os.str(), "a,b\n");
}

TEST(CsvTest, RowsAppendInOrder) {
  std::ostringstream os;
  CsvWriter w(os, {"x", "y"});
  w.row({"1", "2"});
  w.row({"3", "4"});
  EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
  EXPECT_EQ(w.rowsWritten(), 2u);
}

TEST(CsvTest, WidthMismatchThrows) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), PreconditionError);
}

TEST(CsvTest, EmptyHeaderThrows) {
  std::ostringstream os;
  EXPECT_THROW(CsvWriter(os, {}), PreconditionError);
}

TEST(CsvTest, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, NumberFormatting) {
  EXPECT_EQ(CsvWriter::formatNumber(3), "3");
  EXPECT_EQ(CsvWriter::formatNumber(-17), "-17");
  EXPECT_EQ(CsvWriter::formatNumber(2.5), "2.5");
  // round-trippable
  EXPECT_EQ(std::stod(CsvWriter::formatNumber(0.1)), 0.1);
}

TEST(CsvTest, RowValues) {
  std::ostringstream os;
  CsvWriter w(os, {"n", "v"});
  w.rowValues({100, 2.5});
  EXPECT_EQ(os.str(), "n,v\n100,2.5\n");
}

}  // namespace
}  // namespace dsn
