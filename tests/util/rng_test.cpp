#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

namespace dsn {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(11);
  std::map<std::uint64_t, int> counts;
  const int trials = 80000;
  for (int i = 0; i < trials; ++i) ++counts[rng.uniform(8)];
  for (const auto& [value, count] : counts) {
    EXPECT_NEAR(count, trials / 8, trials / 8 / 5) << "value " << value;
  }
}

TEST(RngTest, UniformRejectsZeroBound) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(0), PreconditionError);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(5);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= v == -3;
    sawHi |= v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniformReal();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRealRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniformReal(2.5, 7.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceFrequency) {
  Rng rng(23);
  int hits = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto shuffled = v;
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, sorted);
}

TEST(RngTest, ShuffleActuallyMoves) {
  Rng rng(31);
  std::vector<int> v(64);
  for (int i = 0; i < 64; ++i) v[static_cast<std::size_t>(i)] = i;
  rng.shuffle(v);
  int moved = 0;
  for (int i = 0; i < 64; ++i)
    if (v[static_cast<std::size_t>(i)] != i) ++moved;
  EXPECT_GT(moved, 32);
}

TEST(RngTest, PickIndexInRange) {
  Rng rng(37);
  std::vector<int> v(10);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.pickIndex(v), 10u);
}

TEST(RngTest, PickIndexEmptyThrows) {
  Rng rng(41);
  std::vector<int> v;
  EXPECT_THROW(rng.pickIndex(v), PreconditionError);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.next() == child.next()) ++equal;
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace dsn
