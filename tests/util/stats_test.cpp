#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace dsn {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.7 - 3;
    a.add(v);
    all.add(v);
  }
  for (int i = 0; i < 30; ++i) {
    const double v = i * 1.3 + 11;
    b.add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(SamplesTest, QuantilesOfKnownData) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-12);
  EXPECT_NEAR(s.quantile(1.0), 100.0, 1e-12);
  EXPECT_NEAR(s.quantile(0.0), 1.0, 1e-12);
}

TEST(SamplesTest, SingleElementQuantile) {
  Samples s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 42.0);
}

TEST(SamplesTest, EmptyQuantileThrows) {
  Samples s;
  EXPECT_THROW(s.quantile(0.5), PreconditionError);
}

TEST(SamplesTest, OutOfRangeQuantileThrows) {
  Samples s;
  s.add(1.0);
  EXPECT_THROW(s.quantile(1.5), PreconditionError);
  EXPECT_THROW(s.quantile(-0.1), PreconditionError);
}

TEST(SamplesTest, QuantileAfterLaterAdds) {
  Samples s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.0);
  s.add(3.0);  // cache must invalidate
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(SamplesTest, MeanAndStddev) {
  Samples s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev() * s.stddev(), 32.0 / 7.0, 1e-9);
}

TEST(LinearSlopeTest, ExactLine) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{3, 5, 7, 9, 11};  // slope 2
  EXPECT_NEAR(linearSlope(x, y), 2.0, 1e-12);
}

TEST(LinearSlopeTest, RejectsDegenerateInputs) {
  EXPECT_THROW(linearSlope({1}, {2}), PreconditionError);
  EXPECT_THROW(linearSlope({1, 2}, {1}), PreconditionError);
  EXPECT_THROW(linearSlope({3, 3}, {1, 2}), PreconditionError);
}

}  // namespace
}  // namespace dsn
