// Battery lifecycle: drain from measured radio usage, automatic
// withdraw and rejoin (paper §1's motivating scenario).
#include <gtest/gtest.h>

#include "core/battery.hpp"

namespace dsn {
namespace {

SensorNetwork makeNet(std::size_t n = 100, std::uint64_t seed = 6) {
  NetworkConfig cfg;
  cfg.nodeCount = n;
  cfg.seed = seed;
  return SensorNetwork(cfg);
}

TEST(BatteryTest, StartsFullForEveryNetNode) {
  auto net = makeNet(50);
  BatteryManager bm(net);
  EXPECT_EQ(bm.managedCount(), 50u);
  for (NodeId v : net.clusterNet().netNodes()) {
    EXPECT_DOUBLE_EQ(bm.charge(v), 100.0);
    EXPECT_FALSE(bm.isResting(v));
  }
}

TEST(BatteryTest, DrainMatchesMeasuredUsage) {
  auto net = makeNet(60);
  BatteryManager bm(net);
  const auto run = net.broadcast(BroadcastScheme::kImprovedCff,
                                 net.clusterNet().root(), 1);
  bm.drainFromRun(run);
  const EnergyModel model;
  for (NodeId v : net.clusterNet().netNodes()) {
    const double expected =
        100.0 - model.listenCost * run.listenRounds[v] -
        model.transmitCost * run.transmitRounds[v];
    EXPECT_DOUBLE_EQ(bm.charge(v), expected) << "node " << v;
  }
}

TEST(BatteryTest, IdleDrainAndRechargeOnTick) {
  auto net = makeNet(30);
  BatteryConfig cfg;
  cfg.idleDrainPerTick = 1.5;
  BatteryManager bm(net, cfg);
  bm.tick();
  EXPECT_DOUBLE_EQ(bm.charge(net.clusterNet().root()), 98.5);
}

TEST(BatteryTest, ExhaustedNodeWithdrawsAndComesBack) {
  auto net = makeNet(80);
  BatteryConfig cfg;
  cfg.withdrawThreshold = 15.0;
  cfg.rejoinThreshold = 80.0;
  cfg.rechargePerTick = 40.0;
  cfg.idleDrainPerTick = 0.0;  // only manual drain matters here
  BatteryManager bm(net, cfg);

  // Exhaust exactly one well-connected member node.
  NodeId victim = kInvalidNode;
  for (NodeId v : net.clusterNet().pureMembers()) {
    if (net.graph().degree(v) >= 2) {
      victim = v;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNode);
  bm.drain(victim, 95.0);  // charge 5 <= threshold

  const auto first = bm.tick();
  ASSERT_EQ(first.withdrawn, std::vector<NodeId>{victim});
  EXPECT_TRUE(bm.isResting(victim));
  EXPECT_FALSE(net.clusterNet().contains(victim));
  EXPECT_TRUE(net.graph().isAlive(victim));  // still deployed
  EXPECT_TRUE(net.validate().ok()) << net.validate().summary();

  // 5 -> 45 -> 85 >= rejoin threshold: back after two recharge ticks.
  const auto second = bm.tick();
  EXPECT_TRUE(second.rejoined.empty());
  const auto third = bm.tick();
  ASSERT_EQ(third.rejoined, std::vector<NodeId>{victim});
  EXPECT_FALSE(bm.isResting(victim));
  EXPECT_TRUE(net.clusterNet().contains(victim));
  EXPECT_TRUE(net.validate().ok()) << net.validate().summary();
}

TEST(BatteryTest, NetSurvivesEveryoneExhausted) {
  auto net = makeNet(20);
  BatteryConfig cfg;
  cfg.withdrawThreshold = 150.0;  // everyone always "exhausted"
  cfg.rejoinThreshold = 200.0;    // never recovers enough
  cfg.capacity = 100.0;
  BatteryManager bm(net, cfg);
  for (int i = 0; i < 10; ++i) bm.tick();
  // The withdraw floor keeps a seed structure alive (withdrawals may
  // orphan bystanders, but orphan recovery pulls reachable ones back).
  EXPECT_GE(net.clusterNet().netSize(), 1u);
  EXPECT_EQ(net.graph().liveCount(), 20u);  // nobody left the field
  EXPECT_TRUE(net.validate().ok());
}

TEST(BatteryTest, FullLifecycleUnderWorkload) {
  auto net = makeNet(120);
  BatteryConfig cfg;
  cfg.withdrawThreshold = 60.0;
  cfg.rejoinThreshold = 90.0;
  cfg.rechargePerTick = 20.0;
  cfg.idleDrainPerTick = 1.0;
  BatteryManager bm(net, cfg);
  Rng rng(9);

  bool sawWithdraw = false;
  bool sawRejoin = false;
  for (int epoch = 0; epoch < 40; ++epoch) {
    const auto run = net.broadcast(BroadcastScheme::kImprovedCff,
                                   net.randomNode(rng), 1);
    EXPECT_TRUE(run.allDelivered()) << "epoch " << epoch;
    bm.drainFromRun(run);
    const auto report = bm.tick();
    sawWithdraw |= !report.withdrawn.empty();
    sawRejoin |= !report.rejoined.empty();
    ASSERT_TRUE(net.validate().ok())
        << "epoch " << epoch << ": " << net.validate().summary();
  }
  EXPECT_TRUE(sawWithdraw);
  EXPECT_TRUE(sawRejoin);
}

TEST(BatteryTest, AdoptAndForget) {
  auto net = makeNet(40);
  BatteryManager bm(net);
  const Point2D p = net.position(0);
  const NodeId fresh = net.addSensor({p.x + 3, p.y + 3});
  bm.adopt(fresh);
  EXPECT_DOUBLE_EQ(bm.charge(fresh), 100.0);
  bm.forget(fresh);
  EXPECT_THROW(bm.charge(fresh), PreconditionError);
}

TEST(BatteryTest, InvalidConfigRejected) {
  auto net = makeNet(10);
  BatteryConfig cfg;
  cfg.withdrawThreshold = 90;
  cfg.rejoinThreshold = 50;  // below withdraw: nonsense
  EXPECT_THROW(BatteryManager(net, cfg), PreconditionError);
}

}  // namespace
}  // namespace dsn
