// Mobility: moveSensor semantics and random-waypoint dynamics under
// continuous validation.
#include <gtest/gtest.h>

#include "core/mobility.hpp"
#include "core/sensor_network.hpp"

namespace dsn {
namespace {

TEST(MobilityModelTest, StaysInsideField) {
  RandomWaypointMobility m(Field{100, 50}, 10.0, 1);
  Point2D p{50, 25};
  for (int i = 0; i < 500; ++i) {
    p = m.advance(0, p);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 100.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 50.0);
  }
}

TEST(MobilityModelTest, StepBounded) {
  RandomWaypointMobility m(Field{1000, 1000}, 15.0, 2);
  Point2D p{500, 500};
  for (int i = 0; i < 200; ++i) {
    const Point2D next = m.advance(7, p);
    EXPECT_LE(distance(p, next), 15.0 + 1e-9);
    p = next;
  }
}

TEST(MobilityModelTest, NodesAreIndependent) {
  RandomWaypointMobility m(Field{100, 100}, 5.0, 3);
  const Point2D a = m.advance(1, {50, 50});
  const Point2D b = m.advance(2, {50, 50});
  // Different private waypoints almost surely move them differently.
  EXPECT_NE(a, b);
}

TEST(MobilityModelTest, InvalidConfigRejected) {
  EXPECT_THROW(RandomWaypointMobility(Field{0, 10}, 5.0),
               PreconditionError);
  EXPECT_THROW(RandomWaypointMobility(Field{10, 10}, 0.0),
               PreconditionError);
}

TEST(MoveSensorTest, ShortHopKeepsNodeInNet) {
  NetworkConfig cfg;
  cfg.nodeCount = 100;
  cfg.seed = 21;
  SensorNetwork net(cfg);
  const NodeId v = 50;
  const Point2D p = net.position(v);
  EXPECT_TRUE(net.moveSensor(v, {p.x + 1.0, p.y + 1.0}));
  EXPECT_TRUE(net.clusterNet().contains(v));
  EXPECT_TRUE(net.validate().ok()) << net.validate().summary();
}

TEST(MoveSensorTest, FarJumpLeavesNet) {
  NetworkConfig cfg;
  cfg.nodeCount = 60;
  cfg.seed = 22;
  cfg.field = Field::squareUnits(6);
  SensorNetwork net(cfg);
  const NodeId v = 30;
  EXPECT_FALSE(net.moveSensor(v, {99999.0, 99999.0}));
  EXPECT_FALSE(net.clusterNet().contains(v));
  EXPECT_TRUE(net.graph().isAlive(v));
  EXPECT_TRUE(net.validate().ok()) << net.validate().summary();

  // ...and coming back re-joins.
  const NodeId anchor = net.clusterNet().root();
  EXPECT_TRUE(net.moveSensor(
      v, {net.position(anchor).x + 10, net.position(anchor).y}));
  EXPECT_TRUE(net.clusterNet().contains(v));
  EXPECT_TRUE(net.validate().ok());
}

TEST(MoveSensorTest, EdgesMatchNewPosition) {
  NetworkConfig cfg;
  cfg.nodeCount = 80;
  cfg.seed = 23;
  SensorNetwork net(cfg);
  const NodeId v = 10;
  const NodeId anchor = 40;
  net.moveSensor(v, {net.position(anchor).x + 20.0,
                     net.position(anchor).y});
  // Unit-disk consistency around v.
  for (NodeId u : net.graph().liveNodes()) {
    if (u == v) continue;
    EXPECT_EQ(net.graph().hasEdge(v, u),
              inRange(net.position(v), net.position(u), 50.0))
        << "node " << u;
  }
}

TEST(MoveSensorTest, RandomWaypointChurnStaysValid) {
  NetworkConfig cfg;
  cfg.nodeCount = 120;
  cfg.seed = 24;
  SensorNetwork net(cfg);
  RandomWaypointMobility walker(cfg.field, 40.0, 25);
  Rng rng(26);

  std::vector<NodeId> mobile;
  for (NodeId v : net.clusterNet().netNodes())
    if (rng.chance(0.25)) mobile.push_back(v);

  for (int tick = 0; tick < 12; ++tick) {
    for (NodeId v : mobile)
      net.moveSensor(v, walker.advance(v, net.position(v)));
    const auto report = net.validate();
    ASSERT_TRUE(report.ok()) << "tick " << tick << ":\n"
                             << report.summary();
    // The live net must still carry a full broadcast.
    const auto run = net.broadcast(BroadcastScheme::kImprovedCff,
                                   net.clusterNet().root(), 1);
    EXPECT_TRUE(run.allDelivered()) << "tick " << tick;
  }
}

TEST(MoveSensorTest, MovingTheRootReseats) {
  NetworkConfig cfg;
  cfg.nodeCount = 60;
  cfg.seed = 27;
  SensorNetwork net(cfg);
  const NodeId root = net.clusterNet().root();
  const NodeId other = net.clusterNet().netNodes().back();
  EXPECT_TRUE(net.moveSensor(
      root, {net.position(other).x + 5, net.position(other).y}));
  EXPECT_TRUE(net.validate().ok()) << net.validate().summary();
  EXPECT_NE(net.clusterNet().root(), root);  // someone else took over
  EXPECT_TRUE(net.clusterNet().contains(root));
}

}  // namespace
}  // namespace dsn
