// Stream independence of the seed-derivation chains.
//
// Every stochastic subsystem derives its seeds through chained SplitMix64
// finalization (ExperimentConfig::trialSeed, testkit/seeds.hpp). A weak
// chain makes distinct coordinates share streams — the PR 2 trial-0
// degeneracy — so this test draws 10^5+ seeds across every family and
// requires them pairwise distinct.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>

#include "core/experiment.hpp"
#include "testkit/seeds.hpp"

namespace dsn {
namespace {

TEST(SeedStreamsTest, TrialSeedsCollisionFreeAcrossGrid) {
  ExperimentConfig config;
  config.baseSeed = 2007;
  std::unordered_set<std::uint64_t> seen;
  std::size_t draws = 0;
  // 10 network sizes x 10'000 trials = 1e5 draws from one experiment.
  for (std::size_t n = 100; n <= 1000; n += 100) {
    for (int trial = 0; trial < 10'000; ++trial) {
      EXPECT_TRUE(seen.insert(config.trialSeed(n, trial)).second)
          << "collision at n=" << n << " trial=" << trial;
      ++draws;
    }
  }
  EXPECT_EQ(seen.size(), draws);
}

TEST(SeedStreamsTest, FuzzFamiliesCollisionFreeAndDisjoint) {
  std::unordered_set<std::uint64_t> seen;
  std::size_t draws = 0;
  auto draw = [&](std::uint64_t s, const char* family) {
    EXPECT_TRUE(seen.insert(s).second)
        << family << " collided after " << draws << " draws";
    ++draws;
  };

  // Episode roots across several campaign base seeds, plus the derived
  // deploy/ops streams and a few failure streams per episode — all into
  // ONE set, so cross-family collisions fail too.
  for (std::uint64_t base = 1; base <= 5; ++base) {
    for (std::uint64_t i = 0; i < 5'000; ++i) {
      const std::uint64_t episode = testkit::episodeSeed(base, i);
      draw(episode, "episode");
      draw(testkit::deploySeed(episode), "deploy");
      draw(testkit::opsSeed(episode), "ops");
      draw(testkit::failureSeed(episode, 0), "failure[0]");
      draw(testkit::failureSeed(episode, 1), "failure[1]");
      draw(testkit::arenaSeed(episode, 0), "arena[0]");
      draw(testkit::arenaSeed(episode, 1), "arena[1]");
    }
  }
  EXPECT_GE(draws, 100'000u);
  EXPECT_EQ(seen.size(), draws);
}

TEST(SeedStreamsTest, FuzzStreamsDisjointFromTrialStreams) {
  // The domain tags exist precisely so fuzz streams can never shadow the
  // experiment engine's trial streams under the same base seed.
  ExperimentConfig config;
  config.baseSeed = 1;
  std::unordered_set<std::uint64_t> trialSeeds;
  for (std::size_t n = 100; n <= 500; n += 100) {
    for (int trial = 0; trial < 2'000; ++trial) {
      trialSeeds.insert(config.trialSeed(n, trial));
    }
  }
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    const std::uint64_t episode = testkit::episodeSeed(1, i);
    EXPECT_FALSE(trialSeeds.count(episode)) << "episode " << i;
    EXPECT_FALSE(trialSeeds.count(testkit::deploySeed(episode)));
    EXPECT_FALSE(trialSeeds.count(testkit::opsSeed(episode)));
  }
}

}  // namespace
}  // namespace dsn
