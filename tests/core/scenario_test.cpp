// Scenario engine: parser and executor.
#include <gtest/gtest.h>

#include <sstream>

#include "core/scenario.hpp"

namespace dsn {
namespace {

SensorNetwork makeNet(std::size_t n = 100, std::uint64_t seed = 5) {
  NetworkConfig cfg;
  cfg.nodeCount = n;
  cfg.seed = seed;
  return SensorNetwork(cfg);
}

// ---- parser ----

TEST(ScenarioParserTest, ParsesEveryEventKind) {
  const auto events = parseScenario(
      "join 1.5 2.5\n"
      "leave 7\n"
      "move 7 10 20\n"
      "group 3 9\n"
      "ungroup 3 9\n"
      "broadcast 0 dfo\n"
      "broadcast random\n"
      "multicast 0 9 flood\n"
      "gather\n"
      "compact\n"
      "validate\n");
  ASSERT_EQ(events.size(), 11u);
  EXPECT_EQ(events[0].kind, ScenarioEvent::Kind::kJoin);
  EXPECT_DOUBLE_EQ(events[0].position.x, 1.5);
  EXPECT_EQ(events[1].kind, ScenarioEvent::Kind::kLeave);
  EXPECT_EQ(events[1].node, 7u);
  EXPECT_EQ(events[2].kind, ScenarioEvent::Kind::kMove);
  EXPECT_EQ(events[3].kind, ScenarioEvent::Kind::kJoinGroup);
  EXPECT_EQ(events[3].group, 9u);
  EXPECT_EQ(events[4].kind, ScenarioEvent::Kind::kLeaveGroup);
  EXPECT_EQ(events[5].scheme, BroadcastScheme::kDfo);
  EXPECT_EQ(events[6].node, kInvalidNode);  // random source
  EXPECT_EQ(events[6].scheme, BroadcastScheme::kImprovedCff);
  EXPECT_EQ(events[7].multicastMode, MulticastMode::kFullFlood);
  EXPECT_EQ(events[8].kind, ScenarioEvent::Kind::kGather);
  EXPECT_EQ(events[9].kind, ScenarioEvent::Kind::kCompact);
  EXPECT_EQ(events[10].kind, ScenarioEvent::Kind::kValidate);
}

TEST(ScenarioParserTest, CommentsAndBlanksIgnored) {
  const auto events = parseScenario(
      "# a comment\n"
      "\n"
      "gather  # trailing comment\n"
      "   \n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].sourceLine, 3);
}

TEST(ScenarioParserTest, ErrorsCarryLineNumbers) {
  try {
    parseScenario("gather\nbogus 1 2\n");
    FAIL() << "expected parse error";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ScenarioParserTest, MalformedArgumentsRejected) {
  EXPECT_THROW(parseScenario("join 1\n"), PreconditionError);
  EXPECT_THROW(parseScenario("join x y\n"), PreconditionError);
  EXPECT_THROW(parseScenario("leave -3\n"), PreconditionError);
  EXPECT_THROW(parseScenario("broadcast 0 warp\n"), PreconditionError);
  EXPECT_THROW(parseScenario("multicast 0 1 maybe\n"), PreconditionError);
  EXPECT_THROW(parseScenario("gather extra\n"), PreconditionError);
}

// ---- executor ----

TEST(ScenarioRunnerTest, DemoWorkloadRunsClean) {
  auto net = makeNet();
  const auto events = parseScenario(
      "broadcast random icff\n"
      "gather\n"
      "leave 3\n"
      "group 5 1\n"
      "multicast 0 1 pruned\n"
      "compact\n"
      "broadcast 0 dfo\n");
  const auto outcome = runScenario(net, events);
  EXPECT_TRUE(outcome.valid) << outcome.firstViolation;
  EXPECT_EQ(outcome.eventsExecuted, 7u);
  EXPECT_EQ(outcome.broadcasts, 2u);
  EXPECT_EQ(outcome.multicasts, 1u);
  EXPECT_EQ(outcome.gathers, 1u);
  EXPECT_DOUBLE_EQ(outcome.worstCoverage, 1.0);
  EXPECT_EQ(outcome.log.size(), 7u);
}

TEST(ScenarioRunnerTest, JoinAtPositionEntersNet) {
  auto net = makeNet();
  const std::size_t before = net.size();
  const Point2D p = net.position(0);
  std::ostringstream script;
  script << "join " << p.x + 5 << " " << p.y + 5 << "\n";
  const auto outcome =
      runScenario(net, parseScenario(script.str()));
  EXPECT_TRUE(outcome.valid);
  EXPECT_EQ(net.size(), before + 1);
  EXPECT_NE(outcome.log[0].find("in net"), std::string::npos);
}

TEST(ScenarioRunnerTest, FailureOptionsPropagate) {
  auto net = makeNet();
  ScenarioOptions opts;
  opts.protocol.dropProbability = 1.0;  // nothing ever goes on air
  const auto outcome =
      runScenario(net, parseScenario("broadcast 0 icff\n"), opts);
  EXPECT_LT(outcome.worstCoverage, 0.1);
  EXPECT_TRUE(outcome.valid);  // structure untouched by radio loss
}

TEST(ScenarioRunnerTest, RandomSourceIsSeedStable) {
  auto netA = makeNet();
  auto netB = makeNet();
  const auto events = parseScenario("broadcast random icff\n");
  ScenarioOptions opts;
  opts.seed = 77;
  const auto a = runScenario(netA, events, opts);
  const auto b = runScenario(netB, events, opts);
  EXPECT_EQ(a.log, b.log);
}

TEST(ScenarioRunnerTest, LeaveOfOutsiderThrows) {
  auto net = makeNet();
  EXPECT_THROW(runScenario(net, parseScenario("leave 9999\n")),
               PreconditionError);
}

// ---- robustness events ----

TEST(ScenarioParserTest, ParsesRobustnessEvents) {
  const auto events = parseScenario(
      "crash 7\n"
      "crash 8 12\n"
      "faults drop 0.25\n"
      "faults burst 0.05 0.5 0.9 0.01\n"
      "faults jam 500 400 120 3 9\n"
      "faults none\n"
      "repair\n"
      "rbroadcast 0 icff 6\n"
      "rbroadcast random cff\n");
  ASSERT_EQ(events.size(), 9u);
  EXPECT_EQ(events[0].kind, ScenarioEvent::Kind::kCrash);
  EXPECT_EQ(events[0].node, 7u);
  EXPECT_EQ(events[0].round, 0);  // immediate structural crash
  EXPECT_EQ(events[1].round, 12);
  EXPECT_EQ(events[2].faultKind, ScenarioEvent::FaultKind::kDrop);
  EXPECT_DOUBLE_EQ(events[2].dropProbability, 0.25);
  EXPECT_EQ(events[3].faultKind, ScenarioEvent::FaultKind::kBurst);
  EXPECT_DOUBLE_EQ(events[3].burst.pEnterBurst, 0.05);
  EXPECT_DOUBLE_EQ(events[3].burst.pExitBurst, 0.5);
  EXPECT_DOUBLE_EQ(events[3].burst.dropBurst, 0.9);
  EXPECT_DOUBLE_EQ(events[3].burst.dropGood, 0.01);
  EXPECT_EQ(events[4].faultKind, ScenarioEvent::FaultKind::kJam);
  EXPECT_DOUBLE_EQ(events[4].jam.center.x, 500.0);
  EXPECT_DOUBLE_EQ(events[4].jam.radius, 120.0);
  EXPECT_EQ(events[4].jam.fromRound, 3);
  EXPECT_EQ(events[4].jam.toRound, 9);
  EXPECT_EQ(events[5].faultKind, ScenarioEvent::FaultKind::kNone);
  EXPECT_EQ(events[6].kind, ScenarioEvent::Kind::kRepair);
  EXPECT_EQ(events[7].kind, ScenarioEvent::Kind::kReliableBroadcast);
  EXPECT_EQ(events[7].repairBudget, 6);
  EXPECT_EQ(events[8].node, kInvalidNode);
  EXPECT_EQ(events[8].repairBudget, 8);  // default budget
}

TEST(ScenarioParserTest, RobustnessEventErrorsRejected) {
  EXPECT_THROW(parseScenario("crash\n"), PreconditionError);
  EXPECT_THROW(parseScenario("crash x\n"), PreconditionError);
  EXPECT_THROW(parseScenario("crash 3 0\n"), PreconditionError);
  EXPECT_THROW(parseScenario("crash 3 -2\n"), PreconditionError);
  EXPECT_THROW(parseScenario("crash 3 1.5\n"), PreconditionError);
  EXPECT_THROW(parseScenario("faults\n"), PreconditionError);
  EXPECT_THROW(parseScenario("faults fire\n"), PreconditionError);
  EXPECT_THROW(parseScenario("faults drop\n"), PreconditionError);
  EXPECT_THROW(parseScenario("faults drop 1.5\n"), PreconditionError);
  EXPECT_THROW(parseScenario("faults drop -0.1\n"), PreconditionError);
  EXPECT_THROW(parseScenario("faults burst 0.1 0.5\n"), PreconditionError);
  EXPECT_THROW(parseScenario("faults burst 0 0.5 0.9\n"),
               PreconditionError);
  EXPECT_THROW(parseScenario("faults burst 0.1 0 0.9\n"),
               PreconditionError);
  EXPECT_THROW(parseScenario("faults jam 10 10\n"), PreconditionError);
  EXPECT_THROW(parseScenario("faults jam 10 10 0\n"), PreconditionError);
  EXPECT_THROW(parseScenario("rbroadcast 0 dfo\n"), PreconditionError);
  EXPECT_THROW(parseScenario("rbroadcast 0 icff -1\n"),
               PreconditionError);
  EXPECT_THROW(parseScenario("repair extra\n"), PreconditionError);
}

TEST(ScenarioRunnerTest, CrashRepairRestoresValidity) {
  auto net = makeNet();
  const auto outcome = runScenario(net, parseScenario(
      "crash 11\n"
      "crash 23\n"
      "repair\n"
      "validate\n"
      "broadcast 0 icff\n"));
  EXPECT_TRUE(outcome.valid) << outcome.firstViolation;
  EXPECT_EQ(outcome.crashes, 2u);
  EXPECT_EQ(outcome.repairs, 1u);
  EXPECT_FALSE(net.hasStaleStructure());
}

TEST(ScenarioRunnerTest, ImplicitValidationSuspendedWhileStale) {
  auto net = makeNet();
  // Without the suspension the `group` event after the crash would trip
  // the per-event invariant check and poison the outcome.
  const auto outcome = runScenario(net, parseScenario(
      "crash 11\n"
      "group 5 1\n"
      "repair\n"));
  EXPECT_TRUE(outcome.valid) << outcome.firstViolation;
}

TEST(ScenarioRunnerTest, ExplicitValidateStillReportsStaleness) {
  auto net = makeNet();
  const auto outcome = runScenario(net, parseScenario(
      "crash 11\n"
      "validate\n"
      "repair\n"));
  EXPECT_FALSE(outcome.valid);
  EXPECT_FALSE(outcome.firstViolation.empty());
}

TEST(ScenarioRunnerTest, FaultsEventsShapeLaterRuns) {
  auto net = makeNet();
  const auto lossy = runScenario(net, parseScenario(
      "faults drop 1.0\n"
      "broadcast 0 icff\n"));
  EXPECT_LT(lossy.worstCoverage, 0.1);

  auto net2 = makeNet();
  const auto cleared = runScenario(net2, parseScenario(
      "faults drop 1.0\n"
      "faults none\n"
      "broadcast 0 icff\n"));
  EXPECT_DOUBLE_EQ(cleared.worstCoverage, 1.0);
}

TEST(ScenarioRunnerTest, ReliableBroadcastRepairsDropLoss) {
  auto net = makeNet();
  const auto outcome = runScenario(net, parseScenario(
      "faults drop 0.2\n"
      "rbroadcast 0 icff 30\n"));
  EXPECT_EQ(outcome.reliableBroadcasts, 1u);
  EXPECT_DOUBLE_EQ(outcome.worstCoverage, 1.0);
}

TEST(ScenarioRunnerTest, CrashOfUndeployedNodeThrows) {
  auto net = makeNet();
  EXPECT_THROW(runScenario(net, parseScenario("crash 9999\n")),
               PreconditionError);
}

// ---- mobility events ----

TEST(ScenarioParserTest, ParsesMobilityEvents) {
  const auto events = parseScenario(
      "waypoint 5 25\n"
      "waypoint 1 12.5\n"
      "churn 2.5\n"
      "churn 0.75 10\n"
      "churn 0\n");
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].kind, ScenarioEvent::Kind::kWaypoint);
  EXPECT_EQ(events[0].steps, 5);
  EXPECT_DOUBLE_EQ(events[0].magnitude, 25.0);
  EXPECT_EQ(events[1].steps, 1);
  EXPECT_DOUBLE_EQ(events[1].magnitude, 12.5);
  EXPECT_EQ(events[2].kind, ScenarioEvent::Kind::kChurn);
  EXPECT_EQ(events[2].steps, 1);  // default tick count
  EXPECT_DOUBLE_EQ(events[2].magnitude, 2.5);
  EXPECT_EQ(events[3].steps, 10);
  EXPECT_DOUBLE_EQ(events[3].magnitude, 0.75);
  EXPECT_DOUBLE_EQ(events[4].magnitude, 0.0);
}

TEST(ScenarioParserTest, MobilityEventErrorsRejected) {
  EXPECT_THROW(parseScenario("waypoint\n"), PreconditionError);
  EXPECT_THROW(parseScenario("waypoint 5\n"), PreconditionError);
  EXPECT_THROW(parseScenario("waypoint 0 25\n"), PreconditionError);
  EXPECT_THROW(parseScenario("waypoint 1.5 25\n"), PreconditionError);
  EXPECT_THROW(parseScenario("waypoint 5 0\n"), PreconditionError);
  EXPECT_THROW(parseScenario("waypoint 5 -3\n"), PreconditionError);
  EXPECT_THROW(parseScenario("waypoint 5 25 9\n"), PreconditionError);
  EXPECT_THROW(parseScenario("churn\n"), PreconditionError);
  EXPECT_THROW(parseScenario("churn -1\n"), PreconditionError);
  EXPECT_THROW(parseScenario("churn 2 0\n"), PreconditionError);
  EXPECT_THROW(parseScenario("churn 2 2.5\n"), PreconditionError);
  EXPECT_THROW(parseScenario("churn 2 3 4\n"), PreconditionError);
}

TEST(ScenarioParserTest, MobilityEventsRoundTripThroughFormat) {
  const std::string script =
      "waypoint 5 25\n"
      "waypoint 3 0.10000000000000001\n"
      "churn 2.5\n"
      "churn 0.75 10\n";
  const auto events = parseScenario(script);
  EXPECT_EQ(formatScenario(events), script);
  // Value-exact through a second parse.
  const auto again = parseScenario(formatScenario(events));
  ASSERT_EQ(again.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(again[i].kind, events[i].kind);
    EXPECT_EQ(again[i].steps, events[i].steps);
    EXPECT_DOUBLE_EQ(again[i].magnitude, events[i].magnitude);
  }
}

TEST(ScenarioRunnerTest, WaypointMovesNetNodesAndStaysValid) {
  auto net = makeNet();
  std::vector<Point2D> before;
  for (NodeId v = 0; v < net.size(); ++v) before.push_back(net.position(v));
  const auto outcome =
      runScenario(net, parseScenario("waypoint 3 20\nvalidate\n"));
  EXPECT_TRUE(outcome.valid) << outcome.firstViolation;
  std::size_t moved = 0;
  for (NodeId v = 0; v < before.size(); ++v) {
    if (net.graph().isAlive(v) && !(net.position(v) == before[v])) ++moved;
  }
  EXPECT_GT(moved, 0u);
  EXPECT_NE(outcome.log[0].find("waypoint 3 ticks"), std::string::npos);
}

TEST(ScenarioRunnerTest, WaypointIsSeedStable) {
  auto netA = makeNet();
  auto netB = makeNet();
  const auto events = parseScenario("waypoint 4 15\nbroadcast 0 icff\n");
  ScenarioOptions opts;
  opts.seed = 99;
  const auto a = runScenario(netA, events, opts);
  const auto b = runScenario(netB, events, opts);
  EXPECT_EQ(a.log, b.log);
  for (NodeId v = 0; v < netA.size(); ++v)
    EXPECT_TRUE(netA.position(v) == netB.position(v)) << "node " << v;
}

TEST(ScenarioRunnerTest, ChurnTicksEndCleanAndRepaired) {
  auto net = makeNet();
  const auto outcome =
      runScenario(net,
                  parseScenario("churn 3 8\nvalidate\nbroadcast random icff\n"));
  EXPECT_TRUE(outcome.valid) << outcome.firstViolation;
  EXPECT_FALSE(net.hasStaleStructure());
  EXPECT_NE(outcome.log[0].find("churn 8 ticks"), std::string::npos);
}

TEST(ScenarioRunnerTest, ZeroRateChurnIsANoOp) {
  auto net = makeNet();
  const std::size_t before = net.size();
  const auto outcome = runScenario(net, parseScenario("churn 0 5\n"));
  EXPECT_TRUE(outcome.valid);
  EXPECT_EQ(net.size(), before);
  EXPECT_EQ(outcome.crashes, 0u);
}

// ---- arena rivals ----

TEST(ScenarioParserTest, ParsesEveryRivalSchemeWord) {
  const auto events = parseScenario(
      "broadcast 0 flood\n"
      "broadcast 0 gossip\n"
      "broadcast 0 agossip\n"
      "broadcast 0 counter\n"
      "broadcast 0 distance\n"
      "broadcast 0 rlnc\n");
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[0].scheme, BroadcastScheme::kFlooding);
  EXPECT_EQ(events[1].scheme, BroadcastScheme::kGossip);
  EXPECT_EQ(events[2].scheme, BroadcastScheme::kGossipAdaptive);
  EXPECT_EQ(events[3].scheme, BroadcastScheme::kCounter);
  EXPECT_EQ(events[4].scheme, BroadcastScheme::kDistance);
  EXPECT_EQ(events[5].scheme, BroadcastScheme::kRlnc);
}

TEST(ScenarioParserTest, RivalAndArenaEventsRoundTripThroughFormat) {
  const std::string script =
      "broadcast random gossip\n"
      "broadcast 4 rlnc\n"
      "arena 3\n"
      "arena random\n";
  const auto events = parseScenario(script);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[2].kind, ScenarioEvent::Kind::kArena);
  EXPECT_EQ(events[2].node, 3u);
  EXPECT_EQ(events[3].kind, ScenarioEvent::Kind::kArena);
  EXPECT_EQ(events[3].node, kInvalidNode);
  const auto reparsed = parseScenario(formatScenario(events));
  ASSERT_EQ(reparsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(reparsed[i].kind, events[i].kind) << "event " << i;
    EXPECT_EQ(reparsed[i].node, events[i].node) << "event " << i;
    EXPECT_EQ(reparsed[i].scheme, events[i].scheme) << "event " << i;
  }
}

TEST(ScenarioParserTest, RbroadcastRejectsNonSlottedSchemes) {
  // The NACK repair waves drive the depth-indexed slot schedule; only
  // CFF/iCFF have one (latent-assumption audit, DESIGN.md §16).
  EXPECT_THROW(parseScenario("rbroadcast 0 dfo\n"), PreconditionError);
  EXPECT_THROW(parseScenario("rbroadcast 0 flood\n"), PreconditionError);
  EXPECT_THROW(parseScenario("rbroadcast 0 gossip\n"), PreconditionError);
  EXPECT_THROW(parseScenario("rbroadcast 0 rlnc\n"), PreconditionError);
  EXPECT_NO_THROW(parseScenario("rbroadcast 0 cff\nrbroadcast 0 icff\n"));
}

TEST(ScenarioRunnerTest, ArenaRacesEveryScheme) {
  auto net = makeNet();
  const auto outcome = runScenario(net, parseScenario("arena 0\n"));
  EXPECT_TRUE(outcome.valid) << outcome.firstViolation;
  EXPECT_EQ(outcome.arenas, 1u);
  EXPECT_EQ(outcome.broadcasts, 0u);  // arena legs are not broadcasts
  ASSERT_EQ(outcome.log.size(), 1u);
  for (const BroadcastScheme scheme : kAllBroadcastSchemes) {
    EXPECT_NE(outcome.log[0].find(toString(scheme)), std::string::npos)
        << toString(scheme);
  }
}

TEST(ScenarioRunnerTest, ForceSchemeOverridesScriptedBroadcasts) {
  auto net = makeNet();
  ScenarioOptions opts;
  opts.forceScheme = BroadcastScheme::kGossip;
  const auto outcome =
      runScenario(net, parseScenario("broadcast 0 icff\n"), opts);
  EXPECT_TRUE(outcome.valid) << outcome.firstViolation;
  ASSERT_EQ(outcome.log.size(), 1u);
  EXPECT_NE(outcome.log[0].find("GOSSIP"), std::string::npos)
      << outcome.log[0];
}

}  // namespace
}  // namespace dsn
