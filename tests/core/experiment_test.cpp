// Experiment harness: seeding discipline, metric aggregation.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "core/experiment.hpp"

namespace dsn {
namespace {

TEST(MetricTableTest, AddAndAggregate) {
  MetricTable t;
  t.add("rounds", 10);
  t.add("rounds", 20);
  t.add("awake", 5);
  EXPECT_DOUBLE_EQ(t.mean("rounds"), 15.0);
  EXPECT_DOUBLE_EQ(t.max("rounds"), 20.0);
  EXPECT_EQ(t.samples("rounds").count(), 2u);
  EXPECT_EQ(t.names(), (std::vector<std::string>{"rounds", "awake"}));
}

TEST(MetricTableTest, UnknownMetricThrows) {
  MetricTable t;
  EXPECT_THROW(t.samples("nope"), PreconditionError);
}

TEST(ExperimentTest, TrialSeedsAreDistinctAndStable) {
  ExperimentConfig cfg;
  EXPECT_EQ(cfg.trialSeed(100, 0), cfg.trialSeed(100, 0));
  EXPECT_NE(cfg.trialSeed(100, 0), cfg.trialSeed(100, 1));
  EXPECT_NE(cfg.trialSeed(100, 0), cfg.trialSeed(200, 0));
}

// Regression: the pre-mix64 rule (`baseSeed ^ (n << 20) ^ trial * GAMMA`)
// degenerated for trial 0 — the multiplier vanished, leaving the seed a
// plain XOR of baseSeed and the node count. Every (n, trial) cell of the
// paper's sweep grid must now get a unique, well-mixed stream.
TEST(ExperimentTest, TrialSeedsNeverCollideAcrossPaperSweepGrid) {
  ExperimentConfig cfg;
  std::set<std::uint64_t> seen;
  std::size_t cells = 0;
  for (std::size_t n = 100; n <= 1000; n += 100) {
    for (int trial = 0; trial < 50; ++trial) {
      seen.insert(cfg.trialSeed(n, trial));
      ++cells;
    }
  }
  EXPECT_EQ(seen.size(), cells);  // no collisions anywhere in the grid
}

TEST(ExperimentTest, TrialZeroDependsOnBaseSeed) {
  // With the old rule trial 0 collapsed to baseSeed ^ (n << 20); make
  // sure trial 0 now goes through the same finalizer as every other
  // trial: it must differ from that raw XOR and react to baseSeed.
  ExperimentConfig a, b;
  b.baseSeed = a.baseSeed + 1;
  for (std::size_t n : {100u, 500u, 1000u}) {
    EXPECT_NE(a.trialSeed(n, 0),
              a.baseSeed ^ (static_cast<std::uint64_t>(n) << 20));
    EXPECT_NE(a.trialSeed(n, 0), b.trialSeed(n, 0));
  }
}

TEST(ExperimentTest, SeedRuleMatchesDocumentedDerivation) {
  // The documented stream rule: s0 = mix64(baseSeed);
  // s1 = mix64(s0 ^ n); seed = mix64(s1 ^ trial).
  ExperimentConfig cfg;
  cfg.baseSeed = 0xDEADBEEF;
  const std::uint64_t s0 = ExperimentConfig::mix64(cfg.baseSeed);
  const std::uint64_t s1 = ExperimentConfig::mix64(s0 ^ 300u);
  EXPECT_EQ(cfg.trialSeed(300, 7), ExperimentConfig::mix64(s1 ^ 7u));
}

TEST(ExperimentTest, NetworkForUsesPaperGeometry) {
  ExperimentConfig cfg;
  const auto nc = cfg.networkFor(300, 2);
  EXPECT_DOUBLE_EQ(nc.field.width, 1000.0);
  EXPECT_DOUBLE_EQ(nc.range, 50.0);
  EXPECT_EQ(nc.nodeCount, 300u);
}

TEST(ExperimentTest, RunTrialsCollectsPerTrialMetrics) {
  ExperimentConfig cfg;
  cfg.trials = 3;
  const auto table =
      runTrials(cfg, 60, [](SensorNetwork& net, Rng&, MetricTable& t) {
        t.add("n", static_cast<double>(net.size()));
        t.add("backbone", static_cast<double>(net.stats().backboneSize));
      });
  EXPECT_EQ(table.samples("n").count(), 3u);
  EXPECT_DOUBLE_EQ(table.mean("n"), 60.0);
  EXPECT_GT(table.mean("backbone"), 0.0);
}

TEST(ExperimentTest, RunTrialsIsReproducible) {
  ExperimentConfig cfg;
  cfg.trials = 2;
  auto probe = [](SensorNetwork& net, Rng& rng, MetricTable& t) {
    const auto run = net.broadcast(BroadcastScheme::kImprovedCff,
                                   net.randomNode(rng), 1);
    t.add("rounds", static_cast<double>(run.sim.rounds));
  };
  const auto a = runTrials(cfg, 80, probe);
  const auto b = runTrials(cfg, 80, probe);
  EXPECT_EQ(a.samples("rounds").values(), b.samples("rounds").values());
}

TEST(ExperimentTest, ZeroTrialsRejected) {
  ExperimentConfig cfg;
  cfg.trials = 0;
  EXPECT_THROW(
      runTrials(cfg, 10, [](SensorNetwork&, Rng&, MetricTable&) {}),
      PreconditionError);
}

}  // namespace
}  // namespace dsn
