// CSV/table reporting with real file IO.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/report.hpp"
#include "util/log.hpp"

namespace dsn {
namespace {

namespace fs = std::filesystem;

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dsn_report_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(ReportTest, WriteCsvCreatesParentsAndContent) {
  const auto path = dir_ / "nested" / "out.csv";
  const std::string written =
      writeCsv(path.string(), {"n", "rounds"}, {{100, 27}, {200, 35.5}});
  EXPECT_TRUE(fs::exists(written));

  std::ifstream in(written);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "n,rounds\n100,27\n200,35.5\n");
}

TEST_F(ReportTest, WriteCsvOverwrites) {
  const auto path = (dir_ / "o.csv").string();
  writeCsv(path, {"a"}, {{1}});
  writeCsv(path, {"a"}, {{2}});
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "a\n2\n");
}

TEST_F(ReportTest, UnwritablePathThrows) {
  EXPECT_THROW(writeCsv((dir_ / "x").string() + "/", {"a"}, {{1}}),
               std::exception);
}

TEST(LogTest, LevelGateWorks) {
  const LogLevel before = logLevel();
  setLogLevel(LogLevel::kError);
  EXPECT_EQ(logLevel(), LogLevel::kError);
  // These must be cheap no-ops (no assertion possible on stderr here,
  // but at least exercise the macros at every level).
  DSN_LOG_INFO << "suppressed";
  DSN_LOG_WARN << "suppressed";
  DSN_LOG_DEBUG << "suppressed";
  setLogLevel(LogLevel::kDebug);
  DSN_LOG_DEBUG << "emitted";
  setLogLevel(before);
}

}  // namespace
}  // namespace dsn
