// Randomized operation-sequence stress: arbitrary interleavings of
// joins, departures, moves, group churn, compactions and broadcasts must
// never break an invariant or a delivery guarantee. This is the
// repository's fuzz harness — seeds are cheap to add when a bug needs a
// regression anchor.
#include <gtest/gtest.h>

#include <sstream>

#include "broadcast/convergecast.hpp"
#include "core/mobility.hpp"
#include "core/sensor_network.hpp"

namespace dsn {
namespace {

struct StressParam {
  std::uint64_t seed;
  std::size_t startNodes;
  int operations;
};

class StressSweep : public ::testing::TestWithParam<StressParam> {};

TEST_P(StressSweep, RandomOperationSoup) {
  const auto p = GetParam();
  NetworkConfig cfg;
  cfg.nodeCount = p.startNodes;
  cfg.seed = p.seed;
  SensorNetwork net(cfg);
  Rng rng(p.seed ^ 0x57E55);
  RandomWaypointMobility walker(cfg.field, 60.0, p.seed ^ 0x90B);

  int validationsFailed = 0;
  std::ostringstream history;

  for (int op = 0; op < p.operations; ++op) {
    const double dice = rng.uniformReal();
    const auto nodes = net.clusterNet().netNodes();
    if (nodes.empty()) break;

    if (dice < 0.25) {
      // Join near a random in-net anchor.
      const NodeId anchor = nodes[rng.pickIndex(nodes)];
      const Point2D q{net.position(anchor).x + rng.uniformReal(-45, 45),
                      net.position(anchor).y + rng.uniformReal(-45, 45)};
      net.addSensor(q);
      history << "join;";
    } else if (dice < 0.45 && nodes.size() > 5) {
      net.removeSensor(nodes[rng.pickIndex(nodes)]);
      history << "leave;";
    } else if (dice < 0.65) {
      const NodeId v = nodes[rng.pickIndex(nodes)];
      net.moveSensor(v, walker.advance(v, net.position(v)));
      history << "move;";
    } else if (dice < 0.75) {
      const NodeId v = nodes[rng.pickIndex(nodes)];
      const GroupId g = 1 + static_cast<GroupId>(rng.uniform(3));
      if (net.clusterNet().inGroup(v, g))
        net.leaveGroup(v, g);
      else
        net.joinGroup(v, g);
      history << "group;";
    } else if (dice < 0.80) {
      net.clusterNet().compactSlots();
      history << "compact;";
    } else if (dice < 0.90) {
      const NodeId source = nodes[rng.pickIndex(nodes)];
      const auto run = net.broadcast(BroadcastScheme::kImprovedCff,
                                     source, 1);
      EXPECT_TRUE(run.allDelivered())
          << "broadcast failed after ops: " << history.str();
      history << "bcast;";
    } else {
      std::vector<std::uint64_t> values(net.graph().size(), 1);
      const auto gather = runConvergecast(net.clusterNet(), values);
      EXPECT_TRUE(gather.complete())
          << "gather failed after ops: " << history.str();
      EXPECT_EQ(gather.aggregate, net.clusterNet().netSize());
      history << "gather;";
    }

    const auto report = net.validate();
    if (!report.ok()) {
      ++validationsFailed;
      ADD_FAILURE() << "invariants broken at op " << op << " ("
                    << history.str() << "):\n"
                    << report.summary();
      break;
    }
  }
  EXPECT_EQ(validationsFailed, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Soups, StressSweep,
    ::testing::Values(StressParam{0xA11CE, 120, 120},
                      StressParam{0xB0B, 80, 150},
                      StressParam{0xCA7, 200, 100},
                      StressParam{0xD0C, 60, 200},
                      StressParam{0xE66, 150, 120},
                      StressParam{0xF1F0, 40, 250}));

}  // namespace
}  // namespace dsn
