// Golden-trace snapshot test: the demo scenario's radio-event stream
// and a seeded gossip broadcast's stream must stay byte-identical to
// the committed golden JSONL files.
//
// Any change to deployment, clustering, slot assignment, scheduling,
// collision resolution — or, for the gossip golden, the rival's relay
// coins and backoff draws — shows up here as a diff, which is the
// point: it forces behaviour changes to be acknowledged. To accept new
// goldens after an intentional change:
//
//   build/tests/golden_trace_test --update-golden
//
// and commit the rewritten tests/data/demo_trace.jsonl and
// tests/data/gossip_trace.jsonl.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/scenario.hpp"
#include "core/sensor_network.hpp"
#include "radio/trace.hpp"

namespace {

constexpr const char* kScenarioPath = DSN_SOURCE_DIR "/scenarios/demo.wsn";
constexpr const char* kGoldenPath =
    DSN_SOURCE_DIR "/tests/data/demo_trace.jsonl";
constexpr const char* kGossipGoldenPath =
    DSN_SOURCE_DIR "/tests/data/gossip_trace.jsonl";

std::string renderScenario(const std::vector<dsn::ScenarioEvent>& events) {
  dsn::NetworkConfig config;
  config.nodeCount = 60;  // smaller than the demo's 200 to keep it snappy
  config.seed = 2007;

  dsn::SensorNetwork net(config);
  dsn::ScenarioOptions options;
  options.protocol.traceCapacity = 16384;
  const dsn::ScenarioOutcome outcome = dsn::runScenario(net, events, options);
  if (!outcome.valid) {
    throw std::runtime_error("scenario run failed validation: " +
                             outcome.firstViolation);
  }
  if (outcome.traceDropped != 0) {
    throw std::runtime_error(
        "trace overflowed its capacity; the snapshot would be partial");
  }
  std::ostringstream os;
  dsn::writeTraceJsonl(os, outcome.traceEvents);
  return os.str();
}

std::string renderDemoTrace() {
  std::ifstream in(kScenarioPath);
  if (!in) {
    throw std::runtime_error(std::string("cannot open ") + kScenarioPath);
  }
  return renderScenario(dsn::parseScenario(in));
}

std::string renderGossipTrace() {
  // One fixed-probability gossip wave from the root: pins the rival's
  // per-node RNG streams (relay coin + backoff draw order) in addition
  // to the radio layer the demo golden already covers.
  return renderScenario(dsn::parseScenario("broadcast 0 gossip\n"));
}

/// 1-based line number of the first byte difference, for a usable
/// failure message.
std::size_t firstDiffLine(const std::string& a, const std::string& b) {
  std::size_t line = 1;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return line;
    if (a[i] == '\n') ++line;
  }
  return line;
}

/// Returns 0 on match (or successful update), 1 on mismatch.
int compareOrUpdate(const std::string& fresh, const char* path,
                    bool update) {
  if (update) {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
    out << fresh;
    std::cout << "golden_trace_test: rewrote " << path << " ("
              << fresh.size() << " bytes)\n";
    return 0;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "golden_trace_test: missing golden file " << path
              << "\n  generate it with: golden_trace_test --update-golden\n";
    return 1;
  }
  std::ostringstream golden;
  golden << in.rdbuf();

  if (fresh != golden.str()) {
    std::cerr << "golden_trace_test: trace diverged from " << path
              << "\n  first difference at line "
              << firstDiffLine(fresh, golden.str()) << " (fresh "
              << fresh.size() << " bytes, golden " << golden.str().size()
              << " bytes)\n  if the behaviour change is intentional, rerun "
                 "with --update-golden and commit the new golden\n";
    return 1;
  }
  std::cout << "golden_trace_test: " << fresh.size()
            << " bytes byte-identical to " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool update = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-golden") == 0) {
      update = true;
    } else {
      std::cerr << "usage: golden_trace_test [--update-golden]\n";
      return 2;
    }
  }

  try {
    int rc = compareOrUpdate(renderDemoTrace(), kGoldenPath, update);
    rc |= compareOrUpdate(renderGossipTrace(), kGossipGoldenPath, update);
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "golden_trace_test: " << e.what() << "\n";
    return 1;
  }
}
