// End-to-end integration over a zoo of adversarial topologies: every
// protocol must deliver on every connected structure we can build.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/sensor_network.hpp"

namespace dsn {
namespace {

std::vector<Point2D> ring(std::size_t n, double range) {
  // Circumradius chosen so only adjacent ring nodes connect.
  std::vector<Point2D> pts;
  const double step = 0.9 * range;
  const double radius =
      step / (2.0 * std::sin(std::numbers::pi_v<double> /
                             static_cast<double>(n)));
  for (std::size_t i = 0; i < n; ++i) {
    const double a = 2.0 * std::numbers::pi_v<double> *
                     static_cast<double>(i) / static_cast<double>(n);
    pts.push_back({radius * std::cos(a), radius * std::sin(a)});
  }
  return pts;
}

std::vector<Point2D> denseBlob(std::size_t n, double range) {
  // Everyone within range of everyone: a clique.
  std::vector<Point2D> pts;
  Rng rng(5);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniformReal(0, range / 3),
                   rng.uniformReal(0, range / 3)});
  return pts;
}

std::vector<Point2D> dumbbell(std::size_t perSide, double range) {
  // Two cliques joined by a 3-hop corridor.
  std::vector<Point2D> pts;
  Rng rng(6);
  for (std::size_t i = 0; i < perSide; ++i)
    pts.push_back({rng.uniformReal(0, range / 4),
                   rng.uniformReal(0, range / 4)});
  const double corridor = 0.8 * range;
  pts.push_back({range / 4 + corridor, 0});
  pts.push_back({range / 4 + 2 * corridor, 0});
  for (std::size_t i = 0; i < perSide; ++i)
    pts.push_back({range / 4 + 3 * corridor + rng.uniformReal(0, range / 4),
                   rng.uniformReal(0, range / 4)});
  return pts;
}

std::vector<Point2D> comb(std::size_t teeth, double range) {
  // A spine with one dangling tooth per spine node.
  std::vector<Point2D> pts;
  const double step = 0.9 * range;
  for (std::size_t i = 0; i < teeth; ++i) {
    pts.push_back({static_cast<double>(i) * step, 0});
    pts.push_back({static_cast<double>(i) * step, step});
  }
  return pts;
}

class TopologyZoo
    : public ::testing::TestWithParam<std::vector<Point2D> (*)(void)> {};

std::vector<Point2D> zooRing() { return ring(12, 50.0); }
std::vector<Point2D> zooBlob() { return denseBlob(20, 50.0); }
std::vector<Point2D> zooDumbbell() { return dumbbell(10, 50.0); }
std::vector<Point2D> zooComb() { return comb(8, 50.0); }
std::vector<Point2D> zooLine() { return deployLine(15, 50.0); }
std::vector<Point2D> zooStar() { return deployStar(10, 50.0); }
std::vector<Point2D> zooPair() { return {{0, 0}, {30, 0}}; }

TEST_P(TopologyZoo, AllProtocolsDeliverEverywhere) {
  SensorNetwork net(GetParam()(), 50.0);
  ASSERT_TRUE(net.validate().ok()) << net.validate().summary();
  Rng rng(17);
  for (auto scheme : {BroadcastScheme::kDfo, BroadcastScheme::kCff,
                      BroadcastScheme::kImprovedCff}) {
    // Try the root and a random node as sources.
    for (const NodeId source :
         {net.clusterNet().root(), net.randomNode(rng)}) {
      const auto run = net.broadcast(scheme, source, 0xAA);
      EXPECT_TRUE(run.sim.completed)
          << toString(scheme) << " from " << source;
      EXPECT_TRUE(run.allDelivered())
          << toString(scheme) << " from " << source << " coverage "
          << run.coverage();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TopologyZoo,
                         ::testing::Values(&zooRing, &zooBlob,
                                           &zooDumbbell, &zooComb,
                                           &zooLine, &zooStar, &zooPair));

TEST(TopologyZooTest, CliqueIsOneCluster) {
  SensorNetwork net(denseBlob(15, 50.0), 50.0);
  EXPECT_EQ(net.stats().clusterCount, 1u);
  EXPECT_EQ(net.stats().backboneSize, 1u);
}

TEST(TopologyZooTest, MulticastAcrossDumbbell) {
  SensorNetwork net(dumbbell(10, 50.0), 50.0);
  // Group lives entirely on the far side; relays cross the corridor.
  const auto nodes = net.clusterNet().netNodes();
  int joined = 0;
  for (NodeId v : nodes) {
    if (net.position(v).x > 100.0 &&
        net.clusterNet().status(v) == NodeStatus::kPureMember) {
      net.joinGroup(v, 2);
      ++joined;
    }
  }
  ASSERT_GT(joined, 0);
  const auto run = net.multicast(net.clusterNet().root(), 2, 1,
                                 MulticastMode::kFullFlood);
  EXPECT_TRUE(run.allDelivered());
}

}  // namespace
}  // namespace dsn
