// SensorNetwork facade: deployment, dynamics, communication end-to-end.
#include <gtest/gtest.h>

#include "core/sensor_network.hpp"

namespace dsn {
namespace {

TEST(SensorNetworkTest, BuildsPaperScaleNetwork) {
  NetworkConfig cfg;
  cfg.nodeCount = 200;
  cfg.seed = 42;
  SensorNetwork net(cfg);
  EXPECT_EQ(net.size(), 200u);
  EXPECT_TRUE(net.validate().ok()) << net.validate().summary();
  const auto stats = net.stats();
  EXPECT_EQ(stats.networkSize, 200u);
  EXPECT_GT(stats.backboneSize, 0u);
}

TEST(SensorNetworkTest, DeterministicForSameSeed) {
  NetworkConfig cfg;
  cfg.nodeCount = 80;
  cfg.seed = 7;
  SensorNetwork a(cfg), b(cfg);
  EXPECT_EQ(a.initialPoints(), b.initialPoints());
  EXPECT_EQ(a.stats().backboneSize, b.stats().backboneSize);
  EXPECT_EQ(a.stats().maxBSlot, b.stats().maxBSlot);
}

TEST(SensorNetworkTest, BroadcastThroughFacade) {
  NetworkConfig cfg;
  cfg.nodeCount = 120;
  cfg.seed = 9;
  SensorNetwork net(cfg);
  Rng rng(1);
  const NodeId source = net.randomNode(rng);
  for (auto scheme : {BroadcastScheme::kDfo, BroadcastScheme::kCff,
                      BroadcastScheme::kImprovedCff}) {
    const auto run = net.broadcast(scheme, source, 0xCAFE);
    EXPECT_TRUE(run.allDelivered()) << toString(scheme);
  }
}

TEST(SensorNetworkTest, MulticastThroughFacade) {
  NetworkConfig cfg;
  cfg.nodeCount = 120;
  cfg.seed = 10;
  SensorNetwork net(cfg);
  Rng rng(2);
  for (int i = 0; i < 10; ++i) net.joinGroup(net.randomNode(rng), 4);
  const auto run = net.multicast(net.clusterNet().root(), 4, 0xCAFE,
                                 MulticastMode::kFullFlood);
  EXPECT_TRUE(run.allDelivered());
}

TEST(SensorNetworkTest, AddSensorJoinsWhenInRange) {
  NetworkConfig cfg;
  cfg.nodeCount = 50;
  cfg.seed = 11;
  SensorNetwork net(cfg);
  const Point2D nearExisting{net.position(0).x + 10.0,
                             net.position(0).y};
  bool joined = false;
  const NodeId v = net.addSensor(nearExisting, &joined);
  EXPECT_TRUE(joined);
  EXPECT_TRUE(net.clusterNet().contains(v));
  EXPECT_TRUE(net.validate().ok()) << net.validate().summary();
  EXPECT_EQ(net.size(), 51u);
}

TEST(SensorNetworkTest, AddSensorOutOfRangeStaysOutside) {
  NetworkConfig cfg;
  cfg.nodeCount = 30;
  cfg.seed = 12;
  cfg.field = Field::squareUnits(4);
  SensorNetwork net(cfg);
  bool joined = true;
  const NodeId v = net.addSensor({9999.0, 9999.0}, &joined);
  EXPECT_FALSE(joined);
  EXPECT_FALSE(net.clusterNet().contains(v));
  EXPECT_TRUE(net.graph().isAlive(v));
}

TEST(SensorNetworkTest, RemoveSensorReconfigures) {
  NetworkConfig cfg;
  cfg.nodeCount = 100;
  cfg.seed = 13;
  SensorNetwork net(cfg);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const NodeId victim = net.randomNode(rng);
    net.removeSensor(victim);
    ASSERT_TRUE(net.validate().ok())
        << "after removing " << victim << ": "
        << net.validate().summary();
  }
  EXPECT_LE(net.size(), 90u);  // 10 removed; orphans may add to the loss
}

TEST(SensorNetworkTest, LifecycleChurnKeepsWorking) {
  NetworkConfig cfg;
  cfg.nodeCount = 80;
  cfg.seed = 14;
  SensorNetwork net(cfg);
  Rng rng(4);
  for (int step = 0; step < 10; ++step) {
    // Remove one, add one near a random survivor, broadcast.
    net.removeSensor(net.randomNode(rng));
    const NodeId anchor = net.randomNode(rng);
    net.addSensor({net.position(anchor).x + rng.uniformReal(-20, 20),
                   net.position(anchor).y + rng.uniformReal(-20, 20)});
    ASSERT_TRUE(net.validate().ok()) << net.validate().summary();
    const auto run = net.broadcast(BroadcastScheme::kImprovedCff,
                                   net.randomNode(rng), 1);
    EXPECT_TRUE(run.allDelivered()) << "step " << step;
  }
}

TEST(SensorNetworkTest, UniformDeploymentCoversComponentOfFirstNode) {
  NetworkConfig cfg;
  cfg.nodeCount = 150;
  cfg.seed = 15;
  cfg.deployment = DeploymentKind::kUniform;
  cfg.field = Field::squareUnits(12);  // sparse: will fragment
  SensorNetwork net(cfg);
  // The net covers a (possibly small) component; everything in it valid.
  EXPECT_TRUE(net.validate().ok()) << net.validate().summary();
  EXPECT_GE(net.size(), 1u);
  EXPECT_LE(net.size(), 150u);
}

TEST(SensorNetworkTest, ExplicitPointsConstructor) {
  std::vector<Point2D> pts{{0, 0}, {30, 0}, {60, 0}, {90, 0}};
  SensorNetwork net(pts, 40.0);
  EXPECT_EQ(net.size(), 4u);
  EXPECT_TRUE(net.validate().ok());
  const auto run = net.broadcast(BroadcastScheme::kCff, 0, 1);
  EXPECT_TRUE(run.allDelivered());
}

TEST(SensorNetworkTest, GridLineStarDeployments) {
  for (auto kind : {DeploymentKind::kGrid, DeploymentKind::kLine,
                    DeploymentKind::kStar}) {
    NetworkConfig cfg;
    cfg.nodeCount = 25;
    cfg.deployment = kind;
    SensorNetwork net(cfg);
    EXPECT_EQ(net.size(), 25u);
    EXPECT_TRUE(net.validate().ok());
  }
}

}  // namespace
}  // namespace dsn
