// Multi-sink replication (paper Section 2): several cluster-nets over
// one deployment, with broadcast failover between them.
#include <gtest/gtest.h>

#include "core/replicated_network.hpp"
#include "graph/deploy.hpp"
#include "util/rng.hpp"

namespace dsn {
namespace {

std::vector<Point2D> paperPoints(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return deployIncrementalAttach({Field::squareUnits(10), 50.0, n}, rng);
}

TEST(ReplicatedTest, BuildsDistinctValidReplicas) {
  ReplicatedConfig cfg;
  cfg.replicaCount = 3;
  ReplicatedNetwork net(paperPoints(150, 1), 50.0, cfg);
  ASSERT_EQ(net.replicaCount(), 3u);
  EXPECT_EQ(net.validateAll(), "");
  // Distinct roots.
  EXPECT_NE(net.replica(0).root(), net.replica(1).root());
  EXPECT_NE(net.replica(1).root(), net.replica(2).root());
  // All replicas cover the whole deployment.
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(net.replica(i).netSize(), 150u);
}

TEST(ReplicatedTest, BroadcastViaEachReplicaDelivers) {
  ReplicatedNetwork net(paperPoints(120, 2), 50.0, {});
  Rng rng(3);
  for (std::size_t i = 0; i < net.replicaCount(); ++i) {
    const auto nodes = net.replica(i).netNodes();
    const NodeId source = nodes[rng.pickIndex(nodes)];
    const auto run = net.broadcastVia(i, BroadcastScheme::kImprovedCff,
                                      source, 1);
    EXPECT_TRUE(run.allDelivered()) << "replica " << i;
  }
}

TEST(ReplicatedTest, DynamicsApplyToAllReplicas) {
  ReplicatedConfig cfg;
  cfg.replicaCount = 2;
  ReplicatedNetwork net(paperPoints(100, 4), 50.0, cfg);
  Rng rng(5);

  // Remove a few random non-root nodes and add fresh sensors.
  for (int step = 0; step < 8; ++step) {
    const auto nodes = net.replica(0).netNodes();
    NodeId victim;
    do {
      victim = nodes[rng.pickIndex(nodes)];
    } while (victim == net.replica(0).root() ||
             victim == net.replica(1).root());
    net.removeSensor(victim);
    ASSERT_EQ(net.validateAll(), "") << "step " << step;
    EXPECT_FALSE(net.replica(0).contains(victim));
    EXPECT_FALSE(net.replica(1).contains(victim));
  }
}

TEST(ReplicatedTest, FailoverSwitchesReplicaWhenRootArealDies) {
  ReplicatedConfig cfg;
  cfg.replicaCount = 2;
  ReplicatedNetwork net(paperPoints(150, 6), 50.0, cfg);

  const NodeId root0 = net.replica(0).root();
  const NodeId source = net.replica(1).root() == root0
                            ? net.replica(0).netNodes().back()
                            : net.replica(1).root();

  // Kill replica 0's root (and its immediate backbone children) at round
  // zero: a broadcast routed via replica 0 cannot flood past the root's
  // level, while replica 1's structure is unaffected.
  ProtocolOptions opts;
  opts.deaths.emplace_back(root0, 0);
  const auto failover = net.broadcastWithFailover(
      BroadcastScheme::kImprovedCff, source, 1, opts, 0.9);
  EXPECT_GE(failover.run.coverage(), 0.9);
  // Source is replica-1's root; via replica 0 it would first have to
  // relay through root0.
  EXPECT_GT(failover.replicasTried, 0u);
}

TEST(ReplicatedTest, FailoverReportsBestWhenAllDegraded) {
  ReplicatedConfig cfg;
  cfg.replicaCount = 2;
  ReplicatedNetwork net(paperPoints(100, 7), 50.0, cfg);
  ProtocolOptions opts;
  opts.dropProbability = 0.9;  // everything is bad
  const auto failover = net.broadcastWithFailover(
      BroadcastScheme::kImprovedCff, net.replica(0).root(), 1, opts);
  EXPECT_LT(failover.run.coverage(), 1.0);
  EXPECT_EQ(failover.replicasTried, 2u);  // tried them all
}

TEST(ReplicatedTest, UnknownSourceRejected) {
  ReplicatedNetwork net(paperPoints(30, 8), 50.0, {});
  bool threw = false;
  try {
    net.broadcastWithFailover(BroadcastScheme::kImprovedCff, 9999, 1);
  } catch (const PreconditionError&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

TEST(ReplicatedTest, AddSensorJoinsEveryReplica) {
  ReplicatedConfig cfg;
  cfg.replicaCount = 2;
  auto pts = paperPoints(60, 9);
  const Point2D near{pts[0].x + 5, pts[0].y + 5};
  ReplicatedNetwork net(std::move(pts), 50.0, cfg);
  const NodeId fresh = net.addSensor(near);
  EXPECT_TRUE(net.replica(0).contains(fresh));
  EXPECT_TRUE(net.replica(1).contains(fresh));
  EXPECT_EQ(net.validateAll(), "");
}

}  // namespace
}  // namespace dsn
