// Phase timers: nesting tree shape, call accounting, report rendering.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"

namespace dsn::obs {
namespace {

/// Enables telemetry and clears the global timing tree for one test;
/// restores the previous enabled state afterwards.
class TimingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    was_ = enabled();
    setEnabled(true);
    globalTiming().reset();
  }
  void TearDown() override {
    globalTiming().reset();
    setEnabled(was_);
  }

 private:
  bool was_ = false;
};

using TimerTest = TimingFixture;

TEST_F(TimerTest, NestedScopesFormATree) {
  {
    DSN_TIMED_PHASE("outer");
    {
      DSN_TIMED_PHASE("inner");
    }
    {
      DSN_TIMED_PHASE("inner");  // same phase, same path → same node
    }
    {
      DSN_TIMED_PHASE("other");
    }
  }
  const auto roots = globalTiming().snapshot();
  ASSERT_EQ(roots.size(), 1u);
  const auto& outer = *roots[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.calls, 1u);
  ASSERT_EQ(outer.children.size(), 2u);
  EXPECT_EQ(outer.children[0]->name, "inner");
  EXPECT_EQ(outer.children[0]->calls, 2u);
  EXPECT_EQ(outer.children[1]->name, "other");
  EXPECT_EQ(outer.children[1]->calls, 1u);
}

TEST_F(TimerTest, SamePhaseNameOnDifferentPathsStaysDistinct) {
  {
    DSN_TIMED_PHASE("a");
    DSN_TIMED_PHASE("shared");
  }
  {
    DSN_TIMED_PHASE("b");
    DSN_TIMED_PHASE("shared");
  }
  const auto roots = globalTiming().snapshot();
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(roots[0]->name, "a");
  EXPECT_EQ(roots[1]->name, "b");
  ASSERT_EQ(roots[0]->children.size(), 1u);
  ASSERT_EQ(roots[1]->children.size(), 1u);
  EXPECT_EQ(roots[0]->children[0]->name, "shared");
  EXPECT_EQ(roots[1]->children[0]->name, "shared");
}

TEST_F(TimerTest, ChildTimeIsContainedInParent) {
  {
    DSN_TIMED_PHASE("parent");
    DSN_TIMED_PHASE("child");
    // Both scopes cover (almost) the same interval; the parent opened
    // first and closes last, so its total can never be smaller.
  }
  const auto roots = globalTiming().snapshot();
  ASSERT_EQ(roots.size(), 1u);
  ASSERT_EQ(roots[0]->children.size(), 1u);
  EXPECT_GE(roots[0]->nanos, roots[0]->children[0]->nanos);
}

TEST_F(TimerTest, DisabledTimersRecordNothing) {
  setEnabled(false);
  {
    DSN_TIMED_PHASE("ghost");
  }
  EXPECT_TRUE(globalTiming().empty());
  // Enable mid-stream: the already-running scope stays inactive, a new
  // one records.
  setEnabled(true);
  {
    DSN_TIMED_PHASE("real");
  }
  const auto roots = globalTiming().snapshot();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0]->name, "real");
}

TEST_F(TimerTest, ReportListsPhasesIndented) {
  {
    DSN_TIMED_PHASE("build");
    DSN_TIMED_PHASE("slots");
  }
  const std::string rep = globalTiming().report();
  const auto buildPos = rep.find("build");
  const auto slotsPos = rep.find("slots");
  ASSERT_NE(buildPos, std::string::npos);
  ASSERT_NE(slotsPos, std::string::npos);
  EXPECT_LT(buildPos, slotsPos);  // parent precedes child
}

TEST_F(TimerTest, ResetClearsTree) {
  {
    DSN_TIMED_PHASE("p");
  }
  EXPECT_FALSE(globalTiming().empty());
  globalTiming().reset();
  EXPECT_TRUE(globalTiming().empty());
  EXPECT_TRUE(globalTiming().snapshot().empty());
}

}  // namespace
}  // namespace dsn::obs
