// JSON writer correctness and metrics/timing export round-trip: emit a
// document, re-parse it with the test-only parser, and compare against
// the registry state.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "tests/obs/minijson.hpp"

namespace dsn::obs {
namespace {

using testjson::Value;

TEST(JsonWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  // Round-trip through the parser restores the original.
  JsonWriter w;
  w.beginObject().kv("s", "quote\" slash\\ ctl\n").endObject();
  const Value doc = testjson::parse(w.str());
  EXPECT_EQ(doc.at("s").str, "quote\" slash\\ ctl\n");
}

TEST(JsonWriterTest, NestedContainersAndScalars) {
  JsonWriter w;
  w.beginObject();
  w.kv("int", std::int64_t{-42});
  w.kv("uint", std::uint64_t{7});
  w.kv("float", 2.5);
  w.kv("flag", true);
  w.key("none").null();
  w.key("list").beginArray().value(1).value(2).endArray();
  w.key("nested").beginObject().kv("x", 1).endObject();
  w.endObject();
  EXPECT_EQ(w.depth(), 0u);

  const Value doc = testjson::parse(w.str());
  EXPECT_EQ(doc.at("int").number, -42.0);
  EXPECT_EQ(doc.at("uint").number, 7.0);
  EXPECT_EQ(doc.at("float").number, 2.5);
  EXPECT_TRUE(doc.at("flag").boolean);
  EXPECT_EQ(doc.at("none").type, Value::Type::kNull);
  ASSERT_EQ(doc.at("list").array.size(), 2u);
  EXPECT_EQ(doc.at("nested").at("x").number, 1.0);
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.beginObject();
  w.kv("nan", std::nan(""));
  w.kv("inf", std::numeric_limits<double>::infinity());
  w.endObject();
  const Value doc = testjson::parse(w.str());
  EXPECT_EQ(doc.at("nan").type, Value::Type::kNull);
  EXPECT_EQ(doc.at("inf").type, Value::Type::kNull);
}

TEST(ExportTest, RegistryRoundTripsThroughJson) {
  MetricsRegistry reg;
  reg.counter("sim.transmissions").increment(17);
  reg.counter("sim.collisions").increment(3);
  reg.gauge("cluster.backbone_size").set(55.0);
  Histogram& h = reg.histogram("latency", {1.0, 2.0, 4.0});
  h.observe(1.0);
  h.observe(3.0);
  h.observe(9.0);

  JsonWriter w;
  writeRegistryJson(w, reg);
  const Value doc = testjson::parse(w.str());

  EXPECT_EQ(doc.at("counters").at("sim.transmissions").number, 17.0);
  EXPECT_EQ(doc.at("counters").at("sim.collisions").number, 3.0);
  EXPECT_EQ(doc.at("gauges").at("cluster.backbone_size").number, 55.0);

  const Value& hist = doc.at("histograms").at("latency");
  ASSERT_EQ(hist.at("bounds").array.size(), 3u);
  EXPECT_EQ(hist.at("bounds").array[2].number, 4.0);
  // counts has one extra overflow bucket and matches the observations:
  // 1.0 → bucket 0, 3.0 → bucket 2 (≤4), 9.0 → overflow.
  ASSERT_EQ(hist.at("counts").array.size(), 4u);
  EXPECT_EQ(hist.at("counts").array[0].number, 1.0);
  EXPECT_EQ(hist.at("counts").array[1].number, 0.0);
  EXPECT_EQ(hist.at("counts").array[2].number, 1.0);
  EXPECT_EQ(hist.at("counts").array[3].number, 1.0);
  EXPECT_EQ(hist.at("count").number, 3.0);
  EXPECT_EQ(hist.at("sum").number, 13.0);
  EXPECT_EQ(hist.at("min").number, 1.0);
  EXPECT_EQ(hist.at("max").number, 9.0);
}

TEST(ExportTest, TimingTreeRoundTripsThroughJson) {
  const bool was = enabled();
  setEnabled(true);
  globalTiming().reset();
  {
    DSN_TIMED_PHASE("build");
    DSN_TIMED_PHASE("slots");
  }
  JsonWriter w;
  writeTimingJson(w, globalTiming());
  const std::string text = w.str();
  globalTiming().reset();
  setEnabled(was);

  const Value doc = testjson::parse(text);
  ASSERT_EQ(doc.array.size(), 1u);
  const Value& build = doc.array[0];
  EXPECT_EQ(build.at("phase").str, "build");
  EXPECT_EQ(build.at("calls").number, 1.0);
  EXPECT_GE(build.at("ms").number, 0.0);
  ASSERT_EQ(build.at("children").array.size(), 1u);
  EXPECT_EQ(build.at("children").array[0].at("phase").str, "slots");
}

TEST(ExportTest, MetricsDocumentHasSchemaHeader) {
  MetricsRegistry reg;
  reg.counter("events").increment();
  const Value doc = testjson::parse(metricsDocumentJson(reg, globalTiming()));
  EXPECT_EQ(doc.at("schema").str, "dsnet-metrics-v1");
  EXPECT_EQ(doc.at("metrics").at("counters").at("events").number, 1.0);
  EXPECT_EQ(doc.at("timing").type, Value::Type::kArray);
}

TEST(ExportTest, EmptyRegistryStillEmitsAllSections) {
  MetricsRegistry reg;
  JsonWriter w;
  writeRegistryJson(w, reg);
  const Value doc = testjson::parse(w.str());
  EXPECT_TRUE(doc.at("counters").object.empty());
  EXPECT_TRUE(doc.at("gauges").object.empty());
  EXPECT_TRUE(doc.at("histograms").object.empty());
}

}  // namespace
}  // namespace dsn::obs
