// JSON writer correctness and metrics/timing export round-trip: emit a
// document, re-parse it with the test-only parser, and compare against
// the registry state.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "tests/obs/minijson.hpp"

namespace dsn::obs {
namespace {

using testjson::Value;

TEST(JsonWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  // Round-trip through the parser restores the original.
  JsonWriter w;
  w.beginObject().kv("s", "quote\" slash\\ ctl\n").endObject();
  const Value doc = testjson::parse(w.str());
  EXPECT_EQ(doc.at("s").str, "quote\" slash\\ ctl\n");
}

TEST(JsonWriterTest, NestedContainersAndScalars) {
  JsonWriter w;
  w.beginObject();
  w.kv("int", std::int64_t{-42});
  w.kv("uint", std::uint64_t{7});
  w.kv("float", 2.5);
  w.kv("flag", true);
  w.key("none").null();
  w.key("list").beginArray().value(1).value(2).endArray();
  w.key("nested").beginObject().kv("x", 1).endObject();
  w.endObject();
  EXPECT_EQ(w.depth(), 0u);

  const Value doc = testjson::parse(w.str());
  EXPECT_EQ(doc.at("int").number, -42.0);
  EXPECT_EQ(doc.at("uint").number, 7.0);
  EXPECT_EQ(doc.at("float").number, 2.5);
  EXPECT_TRUE(doc.at("flag").boolean);
  EXPECT_EQ(doc.at("none").type, Value::Type::kNull);
  ASSERT_EQ(doc.at("list").array.size(), 2u);
  EXPECT_EQ(doc.at("nested").at("x").number, 1.0);
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.beginObject();
  w.kv("nan", std::nan(""));
  w.kv("inf", std::numeric_limits<double>::infinity());
  w.endObject();
  const Value doc = testjson::parse(w.str());
  EXPECT_EQ(doc.at("nan").type, Value::Type::kNull);
  EXPECT_EQ(doc.at("inf").type, Value::Type::kNull);
}

TEST(ExportTest, RegistryRoundTripsThroughJson) {
  MetricsRegistry reg;
  reg.counter("sim.transmissions").increment(17);
  reg.counter("sim.collisions").increment(3);
  reg.gauge("cluster.backbone_size").set(55.0);
  Histogram& h = reg.histogram("latency", {1.0, 2.0, 4.0});
  h.observe(1.0);
  h.observe(3.0);
  h.observe(9.0);

  JsonWriter w;
  writeRegistryJson(w, reg);
  const Value doc = testjson::parse(w.str());

  EXPECT_EQ(doc.at("counters").at("sim.transmissions").number, 17.0);
  EXPECT_EQ(doc.at("counters").at("sim.collisions").number, 3.0);
  EXPECT_EQ(doc.at("gauges").at("cluster.backbone_size").number, 55.0);

  const Value& hist = doc.at("histograms").at("latency");
  ASSERT_EQ(hist.at("bounds").array.size(), 3u);
  EXPECT_EQ(hist.at("bounds").array[2].number, 4.0);
  // counts has one extra overflow bucket and matches the observations:
  // 1.0 → bucket 0, 3.0 → bucket 2 (≤4), 9.0 → overflow.
  ASSERT_EQ(hist.at("counts").array.size(), 4u);
  EXPECT_EQ(hist.at("counts").array[0].number, 1.0);
  EXPECT_EQ(hist.at("counts").array[1].number, 0.0);
  EXPECT_EQ(hist.at("counts").array[2].number, 1.0);
  EXPECT_EQ(hist.at("counts").array[3].number, 1.0);
  EXPECT_EQ(hist.at("count").number, 3.0);
  EXPECT_EQ(hist.at("sum").number, 13.0);
  EXPECT_EQ(hist.at("min").number, 1.0);
  EXPECT_EQ(hist.at("max").number, 9.0);
}

// Percentile export edge cases: empty registry/histogram, a single
// occupied bucket (clamping to the observed extremes), merged
// histograms, and ranks landing in the overflow bucket.
TEST(ExportTest, PercentilesInHistogramJson) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 90; ++i) h.observe(1.0);
  for (int i = 0; i < 9; ++i) h.observe(4.0);
  h.observe(8.0);

  JsonWriter w;
  writeRegistryJson(w, reg);
  const Value doc = testjson::parse(w.str());
  const Value& hist = doc.at("histograms").at("lat");
  EXPECT_DOUBLE_EQ(hist.at("p50").number, 1.0);
  EXPECT_DOUBLE_EQ(hist.at("p95").number, h.percentile(0.95));
  EXPECT_DOUBLE_EQ(hist.at("p99").number, h.percentile(0.99));
  EXPECT_GE(hist.at("p95").number, 2.0);
  EXPECT_LE(hist.at("p99").number, 8.0);
}

TEST(ExportTest, EmptyHistogramExportsZeroPercentiles) {
  MetricsRegistry reg;
  reg.histogram("empty", {1.0, 2.0});
  JsonWriter w;
  writeRegistryJson(w, reg);
  const Value doc = testjson::parse(w.str());
  const Value& hist = doc.at("histograms").at("empty");
  EXPECT_DOUBLE_EQ(hist.at("p50").number, 0.0);
  EXPECT_DOUBLE_EQ(hist.at("p95").number, 0.0);
  EXPECT_DOUBLE_EQ(hist.at("p99").number, 0.0);
}

TEST(ExportTest, SingleBucketPercentilesClampToObservedRange) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("one", {100.0, 200.0});
  h.observe(42.0);
  h.observe(43.0);
  h.observe(44.0);
  JsonWriter w;
  writeRegistryJson(w, reg);
  const Value doc = testjson::parse(w.str());
  const Value& hist = doc.at("histograms").at("one");
  // Everything sits in bucket 0; interpolation inside [0, 100] must be
  // clamped to [min, max] = [42, 44] rather than inventing values.
  EXPECT_GE(hist.at("p50").number, 42.0);
  EXPECT_LE(hist.at("p99").number, 44.0);
}

TEST(ExportTest, MergedHistogramPercentilesCoverCombinedData) {
  MetricsRegistry a;
  MetricsRegistry b;
  Histogram& ha = a.histogram("m", Histogram::hdrBounds(1.0, 1024.0, 4));
  Histogram& hb = b.histogram("m", Histogram::hdrBounds(1.0, 1024.0, 4));
  for (int i = 0; i < 50; ++i) ha.observe(2.0);
  for (int i = 0; i < 50; ++i) hb.observe(512.0);
  a.mergeFrom(b);

  JsonWriter w;
  writeRegistryJson(w, a);
  const Value doc = testjson::parse(w.str());
  const Value& hist = doc.at("histograms").at("m");
  EXPECT_EQ(hist.at("count").number, 100.0);
  // Half the mass is at 2, half at 512: p50 stays low, p95/p99 land in
  // the upper mode.
  EXPECT_LE(hist.at("p50").number, 4.0);
  EXPECT_GE(hist.at("p95").number, 256.0);
  EXPECT_GE(hist.at("p99").number, hist.at("p95").number);
}

TEST(ExportTest, OverflowBucketPercentileReportsMaxValue) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("ovf", {1.0});
  h.observe(0.5);
  for (int i = 0; i < 99; ++i) h.observe(1000.0);  // all in overflow
  JsonWriter w;
  writeRegistryJson(w, reg);
  const Value doc = testjson::parse(w.str());
  const Value& hist = doc.at("histograms").at("ovf");
  EXPECT_DOUBLE_EQ(hist.at("p95").number, 1000.0);
  EXPECT_DOUBLE_EQ(hist.at("p99").number, 1000.0);
}

TEST(ExportTest, TimingTreeRoundTripsThroughJson) {
  const bool was = enabled();
  setEnabled(true);
  globalTiming().reset();
  {
    DSN_TIMED_PHASE("build");
    DSN_TIMED_PHASE("slots");
  }
  JsonWriter w;
  writeTimingJson(w, globalTiming());
  const std::string text = w.str();
  globalTiming().reset();
  setEnabled(was);

  const Value doc = testjson::parse(text);
  ASSERT_EQ(doc.array.size(), 1u);
  const Value& build = doc.array[0];
  EXPECT_EQ(build.at("phase").str, "build");
  EXPECT_EQ(build.at("calls").number, 1.0);
  EXPECT_GE(build.at("ms").number, 0.0);
  ASSERT_EQ(build.at("children").array.size(), 1u);
  EXPECT_EQ(build.at("children").array[0].at("phase").str, "slots");
}

TEST(ExportTest, MetricsDocumentHasSchemaHeader) {
  MetricsRegistry reg;
  reg.counter("events").increment();
  const Value doc = testjson::parse(metricsDocumentJson(reg, globalTiming()));
  EXPECT_EQ(doc.at("schema").str, "dsnet-metrics-v1");
  EXPECT_EQ(doc.at("metrics").at("counters").at("events").number, 1.0);
  EXPECT_EQ(doc.at("timing").type, Value::Type::kArray);
}

TEST(ExportTest, EmptyRegistryStillEmitsAllSections) {
  MetricsRegistry reg;
  JsonWriter w;
  writeRegistryJson(w, reg);
  const Value doc = testjson::parse(w.str());
  EXPECT_TRUE(doc.at("counters").object.empty());
  EXPECT_TRUE(doc.at("gauges").object.empty());
  EXPECT_TRUE(doc.at("histograms").object.empty());
}

}  // namespace
}  // namespace dsn::obs
