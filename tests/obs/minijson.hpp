// Test-only minimal JSON parser. Just enough to round-trip what the obs
// exporters emit (objects, arrays, strings, numbers, bools, null) so the
// tests verify real structure instead of substring-matching. Throws
// std::runtime_error on malformed input.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace dsn::testjson {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  const Value& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end())
      throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const {
    return object.count(key) > 0;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse() {
    Value v = parseValue();
    skipWs();
    if (pos_ != s_.size()) throw std::runtime_error("trailing input");
    return v;
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error(what + " at offset " + std::to_string(pos_));
  }
  void skipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(const std::string& word) {
    if (s_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  Value parseValue() {
    skipWs();
    const char c = peek();
    if (c == '{') return parseObject();
    if (c == '[') return parseArray();
    if (c == '"') {
      Value v;
      v.type = Value::Type::kString;
      v.str = parseString();
      return v;
    }
    Value v;
    if (consume("null")) return v;
    if (consume("true")) {
      v.type = Value::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume("false")) {
      v.type = Value::Type::kBool;
      return v;
    }
    return parseNumber();
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("bad escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          const unsigned long code =
              std::strtoul(s_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // Tests only emit control characters this way; keep it ASCII.
          out += static_cast<char>(code);
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Value parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a number");
    Value v;
    v.type = Value::Type::kNumber;
    v.number = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  Value parseArray() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parseValue());
      skipWs();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  Value parseObject() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      v.object.emplace(std::move(key), parseValue());
      skipWs();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }
};

inline Value parse(const std::string& text) {
  return Parser(text).parse();
}

}  // namespace dsn::testjson
