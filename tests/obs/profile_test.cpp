// RoundProfiler: inert when profiling is off, and feeding the three
// sim.round_* HDR histograms when on.
#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace dsn::obs {
namespace {

// Restores the global profiling flag so test order never leaks state.
class ProfilingFlagGuard {
 public:
  ProfilingFlagGuard() : previous_(roundProfilingEnabled()) {}
  ~ProfilingFlagGuard() { setRoundProfiling(previous_); }

 private:
  bool previous_;
};

TEST(RoundProfilerTest, InertWhenProfilingOff) {
  ProfilingFlagGuard guard;
  setRoundProfiling(false);
  RoundProfiler profiler;
  EXPECT_FALSE(profiler.active());
  profiler.beginRound();
  profiler.endRound(10, 100);

  MetricsRegistry registry;
  profiler.flushTo(registry);
  EXPECT_EQ(registry.size(), 0u) << "no instruments registered when off";
}

TEST(RoundProfilerTest, CollectsPerRoundDistributionsWhenOn) {
  ProfilingFlagGuard guard;
  setRoundProfiling(true);
  RoundProfiler profiler;
  ASSERT_TRUE(profiler.active());

  constexpr int kRounds = 16;
  for (int i = 0; i < kRounds; ++i) {
    profiler.beginRound();
    profiler.endRound(static_cast<std::uint64_t>(i + 1),
                      static_cast<std::uint64_t>(10 * (i + 1)));
  }

  MetricsRegistry registry;
  profiler.flushTo(registry);
  const auto histograms = registry.histograms();
  ASSERT_EQ(histograms.size(), 3u);
  EXPECT_EQ(histograms[0].first, "sim.round_active");
  EXPECT_EQ(histograms[1].first, "sim.round_ns");
  EXPECT_EQ(histograms[2].first, "sim.round_resolve_work");
  for (const auto& [name, h] : histograms)
    EXPECT_EQ(h->count(), static_cast<std::uint64_t>(kRounds)) << name;

  const Histogram* active = histograms[0].second;
  EXPECT_DOUBLE_EQ(active->minValue(), 1.0);
  EXPECT_DOUBLE_EQ(active->maxValue(), static_cast<double>(kRounds));
  const Histogram* work = histograms[2].second;
  EXPECT_DOUBLE_EQ(work->maxValue(), 10.0 * kRounds);
  // Wall times are nondeterministic but non-negative and summed.
  EXPECT_GE(histograms[1].second->sum(), 0.0);
}

TEST(RoundProfilerTest, FlushIsNoOpWithoutRounds) {
  ProfilingFlagGuard guard;
  setRoundProfiling(true);
  RoundProfiler profiler;
  MetricsRegistry registry;
  profiler.flushTo(registry);
  EXPECT_EQ(registry.size(), 0u)
      << "a run with zero executed rounds exports nothing";
}

TEST(RoundProfilerTest, ProfilerConstructedBeforeDisableStaysConsistent) {
  ProfilingFlagGuard guard;
  setRoundProfiling(true);
  RoundProfiler profiler;
  setRoundProfiling(false);  // flag flips mid-run; instance keeps its state
  EXPECT_TRUE(profiler.active());
  profiler.beginRound();
  profiler.endRound(2, 4);
  MetricsRegistry registry;
  profiler.flushTo(registry);
  EXPECT_EQ(registry.histograms().size(), 3u);
}

}  // namespace
}  // namespace dsn::obs
