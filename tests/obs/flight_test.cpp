// FlightRecorder: ring semantics, overflow accounting, category and
// sampling masks, deterministic merge, sink scoping, and the .dsntrace
// binary round-trip.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/flight.hpp"
#include "obs/flight_io.hpp"
#include "obs/metrics.hpp"

namespace dsn::obs {
namespace {

FrEvent mk(FrType t, std::uint32_t round, std::uint32_t node,
           std::uint32_t data = 0) {
  FrEvent e;
  e.round = round;
  e.node = node;
  e.data = data;
  e.type = static_cast<std::uint8_t>(t);
  return e;
}

TEST(FlightRecorderTest, UnconfiguredRecordsNothing) {
  FlightRecorder r;
  EXPECT_FALSE(r.configured());
  EXPECT_FALSE(r.wants(kFrCatRadio));
  EXPECT_EQ(r.storedEvents(), 0u);
  EXPECT_EQ(r.droppedEvents(), 0u);
}

TEST(FlightRecorderTest, StoresInOrderBelowCapacity) {
  FlightRecorder r;
  r.configure({.capacity = 8});
  for (std::uint32_t i = 0; i < 5; ++i)
    r.record(mk(FrType::kTransmit, i, i * 10));
  EXPECT_EQ(r.totalRecorded(), 5u);
  EXPECT_EQ(r.storedEvents(), 5u);
  EXPECT_EQ(r.droppedEvents(), 0u);
  const auto events = r.orderedEvents();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].round, i);
    EXPECT_EQ(events[i].node, i * 10);
  }
}

// Satellite requirement: forcing overflow must keep the LATEST events
// (flight-recorder semantics) and count the overwritten ones as dropped.
TEST(FlightRecorderTest, OverflowKeepsLatestAndCountsDropped) {
  FlightRecorder r;
  r.configure({.capacity = 4});
  for (std::uint32_t i = 0; i < 10; ++i)
    r.record(mk(FrType::kWakePop, i, i));
  EXPECT_EQ(r.totalRecorded(), 10u);
  EXPECT_EQ(r.storedEvents(), 4u);
  EXPECT_EQ(r.droppedEvents(), 6u);
  const auto events = r.orderedEvents();
  ASSERT_EQ(events.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i)
    EXPECT_EQ(events[i].round, 6 + i) << "oldest-first after wrap";
}

TEST(FlightRecorderTest, OverflowTelemetryFlushesCounterAndIsDeltaBased) {
  FlightRecorder r;
  r.configure({.capacity = 2});
  for (std::uint32_t i = 0; i < 7; ++i) r.record(mk(FrType::kTransmit, i, i));

  MetricsRegistry scratch;
  ScopedMetricsSink metricsScope(scratch);
  ScopedRecorderSink recorderScope(r);
  flushRecorderTelemetry();
  EXPECT_EQ(scratch.counters()[1].second, 7u);  // trace.recorded_events
  auto names = scratch.counters();
  ASSERT_EQ(names[0].first, "trace.dropped_events");
  EXPECT_EQ(names[0].second, 5u);
  // A second flush with no new events must not double-count.
  flushRecorderTelemetry();
  EXPECT_EQ(scratch.counters()[0].second, 5u);
  EXPECT_EQ(scratch.counters()[1].second, 7u);
  // New events after the flush add only the delta.
  r.record(mk(FrType::kTransmit, 7, 7));
  flushRecorderTelemetry();
  EXPECT_EQ(scratch.counters()[0].second, 6u);
  EXPECT_EQ(scratch.counters()[1].second, 8u);
}

TEST(FlightRecorderTest, RuntimeCategoryMask) {
  FlightRecorder r;
  r.configure({.capacity = 8, .categories = kFrCatRadio | kFrCatRun});
  EXPECT_TRUE(r.wants(kFrCatRadio));
  EXPECT_TRUE(r.wants(kFrCatRun));
  EXPECT_FALSE(r.wants(kFrCatSched));
  EXPECT_FALSE(r.wants(kFrCatCollision));
}

TEST(FlightRecorderTest, RoundSampling) {
  FlightRecorder r;
  r.configure({.capacity = 8, .categories = kFrCatAll, .sampleEvery = 4});
  EXPECT_TRUE(r.roundSampled(0));
  EXPECT_FALSE(r.roundSampled(1));
  EXPECT_FALSE(r.roundSampled(3));
  EXPECT_TRUE(r.roundSampled(4));
  EXPECT_TRUE(r.roundSampled(8));
  r.configure({.capacity = 8});
  EXPECT_TRUE(r.roundSampled(17)) << "sampleEvery=1 records every round";
}

TEST(FlightRecorderTest, ResetKeepsConfiguration) {
  FlightRecorder r;
  r.configure({.capacity = 4, .categories = kFrCatRadio, .sampleEvery = 2});
  r.record(mk(FrType::kTransmit, 1, 2));
  r.resetEvents();
  EXPECT_EQ(r.storedEvents(), 0u);
  EXPECT_EQ(r.totalRecorded(), 0u);
  EXPECT_TRUE(r.configured());
  EXPECT_EQ(r.config().categories, kFrCatRadio);
  EXPECT_EQ(r.config().sampleEvery, 2u);
}

// The parallel experiment engine merges per-task recorders in task
// order; the merged stream must equal the stream of a serial run that
// recorded the same events in the same order.
TEST(FlightRecorderTest, MergeReproducesSerialStream) {
  FlightRecorder serial;
  serial.configure({.capacity = 64});
  FlightRecorder parent;
  parent.configure({.capacity = 64});
  FlightRecorder taskA, taskB;
  taskA.configure({.capacity = 64});
  taskB.configure({.capacity = 64});

  for (std::uint32_t i = 0; i < 5; ++i) {
    serial.record(mk(FrType::kTransmit, i, 100 + i));
    taskA.record(mk(FrType::kTransmit, i, 100 + i));
  }
  for (std::uint32_t i = 0; i < 3; ++i) {
    serial.record(mk(FrType::kDelivery, i, 200 + i));
    taskB.record(mk(FrType::kDelivery, i, 200 + i));
  }
  parent.mergeFrom(taskA);
  parent.mergeFrom(taskB);

  const auto a = serial.orderedEvents();
  const auto b = parent.orderedEvents();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].round, b[i].round);
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].type, b[i].type);
  }
  EXPECT_EQ(parent.droppedEvents(), 0u);
}

TEST(FlightRecorderTest, MergeAccumulatesDropCounts) {
  FlightRecorder parent;
  parent.configure({.capacity = 64});
  FlightRecorder task;
  task.configure({.capacity = 2});
  for (std::uint32_t i = 0; i < 5; ++i)
    task.record(mk(FrType::kCollision, i, i));
  parent.mergeFrom(task);
  EXPECT_EQ(parent.storedEvents(), 2u);
  EXPECT_EQ(parent.droppedEvents(), 3u) << "upstream drops inherited";
}

TEST(FlightRecorderTest, MergeIntoUnconfiguredCountsEverythingDropped) {
  FlightRecorder parent;  // never configured
  FlightRecorder task;
  task.configure({.capacity = 4});
  for (std::uint32_t i = 0; i < 6; ++i)
    task.record(mk(FrType::kTransmit, i, i));
  parent.mergeFrom(task);
  EXPECT_EQ(parent.storedEvents(), 0u);
  EXPECT_EQ(parent.droppedEvents(), 6u)
      << "2 upstream drops + 4 stored events with nowhere to go";
}

TEST(FlightRecorderTest, ScopedSinkRedirectsAndRestores) {
  FlightRecorder local;
  local.configure({.capacity = 8});
  FlightRecorder& before = globalRecorder();
  {
    ScopedRecorderSink scope(local);
    EXPECT_EQ(&globalRecorder(), &local);
    if (FlightRecorder* fr = recorderFor<kFrCatRadio>())
      fr->record(mk(FrType::kTransmit, 0, 9));
  }
  EXPECT_EQ(&globalRecorder(), &before);
  EXPECT_EQ(local.storedEvents(), 1u);
}

TEST(FlightRecorderTest, RecorderForHonorsRuntimeMask) {
  FlightRecorder local;
  local.configure({.capacity = 8, .categories = kFrCatFault});
  ScopedRecorderSink scope(local);
  EXPECT_EQ(recorderFor<kFrCatRadio>(), nullptr);
  EXPECT_EQ(recorderFor<kFrCatFault>(), &local);
}

TEST(FlightCategoryTest, NamesAndParsing) {
  EXPECT_EQ(frCategoryOf(FrType::kTransmit), kFrCatRadio);
  EXPECT_EQ(frCategoryOf(FrType::kCollision), kFrCatCollision);
  EXPECT_EQ(frCategoryOf(FrType::kRunEnd), kFrCatRun);
  EXPECT_EQ(frTypeName(FrType::kRoundBegin), "round_begin");
  EXPECT_EQ(frRunKindName(FrRunKind::kIcff), "ICFF");

  std::uint32_t mask = 0;
  EXPECT_TRUE(parseFrCategories("radio,collision", mask));
  EXPECT_EQ(mask, kFrCatRadio | kFrCatCollision);
  EXPECT_TRUE(parseFrCategories("all", mask));
  EXPECT_EQ(mask, kFrCatAll);
  EXPECT_TRUE(parseFrCategories("", mask));
  EXPECT_EQ(mask, kFrCatAll);
  EXPECT_FALSE(parseFrCategories("radio,bogus", mask));
}

TEST(DsnTraceIoTest, RoundTripPreservesMetaAndEvents) {
  FrTraceMeta meta;
  meta.seed = 0xDEADBEEFCAFEull;
  meta.nodes = 2000;
  meta.categories = kFrCatRadio | kFrCatRun;
  meta.sampleEvery = 4;
  meta.droppedEvents = 17;
  std::vector<FrEvent> events;
  for (std::uint32_t i = 0; i < 100; ++i) {
    FrEvent e = mk(FrType::kDelivery, i, i * 3, i * 7);
    e.channel = static_cast<std::uint8_t>(i % 3);
    e.aux = static_cast<std::uint16_t>(i % 5);
    events.push_back(e);
  }

  std::stringstream ss;
  ASSERT_TRUE(writeDsnTrace(ss, meta, events));
  const FrTraceFile back = readDsnTrace(ss);
  EXPECT_EQ(back.meta.seed, meta.seed);
  EXPECT_EQ(back.meta.nodes, meta.nodes);
  EXPECT_EQ(back.meta.categories, meta.categories);
  EXPECT_EQ(back.meta.sampleEvery, meta.sampleEvery);
  EXPECT_EQ(back.meta.droppedEvents, meta.droppedEvents);
  ASSERT_EQ(back.events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back.events[i].round, events[i].round);
    EXPECT_EQ(back.events[i].node, events[i].node);
    EXPECT_EQ(back.events[i].data, events[i].data);
    EXPECT_EQ(back.events[i].type, events[i].type);
    EXPECT_EQ(back.events[i].channel, events[i].channel);
    EXPECT_EQ(back.events[i].aux, events[i].aux);
  }
}

TEST(DsnTraceIoTest, RejectsBadMagicAndTruncation) {
  {
    std::stringstream ss;
    ss << "NOTATRACE-at-all";
    EXPECT_THROW(readDsnTrace(ss), std::runtime_error);
  }
  {
    FrTraceMeta meta;
    std::vector<FrEvent> events(3);
    std::stringstream ss;
    ASSERT_TRUE(writeDsnTrace(ss, meta, events));
    const std::string full = ss.str();
    std::stringstream cut(full.substr(0, full.size() - 8));
    EXPECT_THROW(readDsnTrace(cut), std::runtime_error);
  }
}

TEST(DsnTraceIoTest, ChromeExportIsWellFormedAndLaysRunsOut) {
  FrTraceMeta meta;
  std::vector<FrEvent> events;
  FrEvent begin = mk(FrType::kRunBegin, 0, 5);
  begin.aux = static_cast<std::uint16_t>(FrRunKind::kCff);
  events.push_back(begin);
  events.push_back(mk(FrType::kRoundBegin, 0, 0, 3));
  events.push_back(mk(FrType::kTransmit, 0, 5));
  events.push_back(mk(FrType::kCollision, 1, 7));
  FrEvent end = mk(FrType::kRunEnd, 0, 42, 2);
  end.aux = static_cast<std::uint16_t>(FrRunKind::kCff);
  events.push_back(end);
  // A second run whose rounds restart at 0: the exporter must offset it
  // past the first run on the shared timeline.
  events.push_back(begin);
  events.push_back(mk(FrType::kTransmit, 0, 6));
  events.push_back(end);

  std::stringstream bin;
  ASSERT_TRUE(writeDsnTrace(bin, meta, events));
  const FrTraceFile trace = readDsnTrace(bin);
  std::ostringstream chrome;
  ASSERT_TRUE(writeChromeTrace(chrome, trace));
  const std::string out = chrome.str();
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"CFF\""), std::string::npos);
  // The second run's transmit is shifted by the first run's 2 rounds
  // (2000 synthetic microseconds).
  EXPECT_NE(out.find("\"ts\":2000"), std::string::npos);
}

TEST(DescribeFrEventTest, RendersKeyFields) {
  FrEvent e = mk(FrType::kDelivery, 12, 7, 3);
  e.channel = 1;
  const std::string s = describeFrEvent(e);
  EXPECT_NE(s.find("r12"), std::string::npos);
  EXPECT_NE(s.find("delivery"), std::string::npos);
  EXPECT_NE(s.find("node=7"), std::string::npos);
  EXPECT_NE(s.find("from=3"), std::string::npos);
}

}  // namespace
}  // namespace dsn::obs
