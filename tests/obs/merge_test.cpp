// Telemetry merge semantics backing the parallel experiment engine:
// merging per-task registries must be equivalent to recording serially.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/error.hpp"

namespace dsn::obs {
namespace {

TEST(HistogramMergeTest, EquivalentToObservingEverything) {
  const auto bounds = Histogram::exponentialBounds(6);
  Histogram all(bounds), a(bounds), b(bounds);
  const std::vector<double> first = {1, 3, 9, 27};
  const std::vector<double> second = {0.5, 64, 2, 500};
  for (double v : first) {
    all.observe(v);
    a.observe(v);
  }
  for (double v : second) {
    all.observe(v);
    b.observe(v);
  }
  a.mergeFrom(b);
  EXPECT_EQ(a.bucketCounts(), all.bucketCounts());
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.minValue(), all.minValue());
  EXPECT_DOUBLE_EQ(a.maxValue(), all.maxValue());
  EXPECT_NEAR(a.sum(), all.sum(), 1e-9);
}

TEST(HistogramMergeTest, MergingEmptyIsANoOp) {
  const auto bounds = Histogram::exponentialBounds(4);
  Histogram h(bounds), empty(bounds);
  h.observe(2.0);
  h.observe(7.0);
  const auto counts = h.bucketCounts();
  h.mergeFrom(empty);
  EXPECT_EQ(h.bucketCounts(), counts);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.minValue(), 2.0);
  EXPECT_DOUBLE_EQ(h.maxValue(), 7.0);
}

TEST(HistogramMergeTest, MergingIntoEmptyAdoptsMinMax) {
  const auto bounds = Histogram::exponentialBounds(4);
  Histogram h(bounds), other(bounds);
  other.observe(3.0);
  other.observe(11.0);
  h.mergeFrom(other);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.minValue(), 3.0);
  EXPECT_DOUBLE_EQ(h.maxValue(), 11.0);
}

TEST(HistogramMergeTest, BoundsMismatchThrows) {
  Histogram a(Histogram::exponentialBounds(4));
  Histogram b(Histogram::exponentialBounds(5));
  b.observe(1.0);
  EXPECT_THROW(a.mergeFrom(b), PreconditionError);
}

TEST(MetricsRegistryMergeTest, CountersAddGaugesOverwrite) {
  MetricsRegistry dst, src;
  dst.counter("events").increment(3);
  src.counter("events").increment(4);
  dst.gauge("level").set(1.0);
  src.gauge("level").set(9.0);
  dst.mergeFrom(src);
  EXPECT_EQ(dst.counters(),
            (std::vector<std::pair<std::string, std::uint64_t>>{
                {"events", 7}}));
  EXPECT_EQ(dst.gauges(), (std::vector<std::pair<std::string, double>>{
                              {"level", 9.0}}));
}

TEST(MetricsRegistryMergeTest, MissingInstrumentsAreRegistered) {
  MetricsRegistry dst, src;
  src.counter("only.in.src");  // registered but never incremented
  src.gauge("src.gauge").set(5.0);
  src.histogram("src.hist", Histogram::exponentialBounds(4)).observe(2.0);
  dst.mergeFrom(src);
  // Name-set parity with the source even for zero-valued instruments, so
  // a parallel run exports the same keys as a serial one.
  ASSERT_EQ(dst.counters().size(), 1u);
  EXPECT_EQ(dst.counters()[0], (std::pair<std::string, std::uint64_t>{
                                   "only.in.src", 0}));
  ASSERT_EQ(dst.gauges().size(), 1u);
  ASSERT_EQ(dst.histograms().size(), 1u);
  EXPECT_EQ(dst.histograms()[0].second->count(), 1u);
}

TEST(MetricsRegistryMergeTest, SequentialMergesMatchSerialRecording) {
  // Simulate three per-task registries folded in task order versus one
  // registry recording the same event stream serially.
  MetricsRegistry serial, merged;
  const auto bounds = Histogram::exponentialBounds(6);
  for (int task = 0; task < 3; ++task) {
    MetricsRegistry local;
    for (int i = 0; i <= task; ++i) {
      const double v = static_cast<double>(task * 10 + i);
      local.counter("n").increment();
      serial.counter("n").increment();
      local.gauge("last").set(v);
      serial.gauge("last").set(v);
      local.histogram("h", bounds).observe(v);
      serial.histogram("h", bounds).observe(v);
    }
    merged.mergeFrom(local);
  }
  EXPECT_EQ(merged.counters(), serial.counters());
  EXPECT_EQ(merged.gauges(), serial.gauges());
  const auto hs = serial.histograms(), hm = merged.histograms();
  ASSERT_EQ(hm.size(), hs.size());
  EXPECT_EQ(hm[0].second->bucketCounts(), hs[0].second->bucketCounts());
  EXPECT_DOUBLE_EQ(hm[0].second->minValue(), hs[0].second->minValue());
  EXPECT_DOUBLE_EQ(hm[0].second->maxValue(), hs[0].second->maxValue());
  EXPECT_NEAR(hm[0].second->sum(), hs[0].second->sum(), 1e-9);
}

// Helper: record a leaf phase with a deterministic duration.
void recordPhase(TimingRegistry& reg, std::string_view name,
                 std::uint64_t nanos) {
  auto* node = reg.enter(name);
  reg.exit(node, nanos);
}

TEST(TimingRegistryMergeTest, MatchingPhasesAccumulate) {
  TimingRegistry dst, src;
  recordPhase(dst, "build", 100);
  recordPhase(src, "build", 50);
  recordPhase(src, "run", 25);
  dst.mergeFrom(src);
  const auto roots = dst.snapshot();
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(roots[0]->name, "build");
  EXPECT_EQ(roots[0]->calls, 2u);
  EXPECT_EQ(roots[0]->nanos, 150u);
  EXPECT_EQ(roots[1]->name, "run");  // new names append in src order
  EXPECT_EQ(roots[1]->calls, 1u);
}

TEST(TimingRegistryMergeTest, GraftsUnderTheOpenPhase) {
  TimingRegistry src;
  recordPhase(src, "task", 10);

  TimingRegistry dst;
  auto* sweep = dst.enter("sweep");
  dst.mergeFrom(src);  // merged while "sweep" is still open
  dst.exit(sweep, 99);

  const auto roots = dst.snapshot();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0]->name, "sweep");
  ASSERT_EQ(roots[0]->children.size(), 1u);
  EXPECT_EQ(roots[0]->children[0]->name, "task");
  EXPECT_EQ(roots[0]->children[0]->nanos, 10u);
}

TEST(TimingRegistryMergeTest, MergesNestedTreesRecursively) {
  TimingRegistry dst, src;
  for (TimingRegistry* reg : {&dst, &src}) {
    auto* outer = reg->enter("outer");
    recordPhase(*reg, "inner", 5);
    reg->exit(outer, 20);
  }
  dst.mergeFrom(src);
  const auto roots = dst.snapshot();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0]->calls, 2u);
  EXPECT_EQ(roots[0]->nanos, 40u);
  ASSERT_EQ(roots[0]->children.size(), 1u);
  EXPECT_EQ(roots[0]->children[0]->calls, 2u);
  EXPECT_EQ(roots[0]->children[0]->nanos, 10u);
}

TEST(ScopedSinkTest, RedirectsOnlyThisThreadAndRestores) {
  MetricsRegistry local;
  {
    ScopedMetricsSink sink(local);
    EXPECT_EQ(&globalMetrics(), &local);
    EXPECT_NE(&processMetrics(), &local);
    MetricsRegistry inner;
    {
      ScopedMetricsSink nested(inner);
      EXPECT_EQ(&globalMetrics(), &inner);  // innermost wins
    }
    EXPECT_EQ(&globalMetrics(), &local);  // nested scope restored
  }
  EXPECT_EQ(&globalMetrics(), &processMetrics());

  TimingRegistry tlocal;
  {
    ScopedTimingSink sink(tlocal);
    EXPECT_EQ(&globalTiming(), &tlocal);
  }
  EXPECT_EQ(&globalTiming(), &processTiming());
}

}  // namespace
}  // namespace dsn::obs
