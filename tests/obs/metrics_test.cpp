// MetricsRegistry: name uniqueness, kind clashes, histogram bucket edges.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace dsn::obs {
namespace {

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("sim.transmissions");
  Counter& b = reg.counter("sim.transmissions");
  EXPECT_EQ(&a, &b);
  a.increment(3);
  EXPECT_EQ(b.value(), 3u);

  Gauge& g1 = reg.gauge("cluster.backbone_size");
  Gauge& g2 = reg.gauge("cluster.backbone_size");
  EXPECT_EQ(&g1, &g2);

  Histogram& h1 = reg.histogram("lat", {1.0, 2.0});
  Histogram& h2 = reg.histogram("lat", {99.0});  // bounds ignored on re-reg
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.upperBounds(), (std::vector<double>{1.0, 2.0}));

  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistryTest, KindClashThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), PreconditionError);
  EXPECT_THROW(reg.histogram("x", {1.0}), PreconditionError);
  reg.gauge("y");
  EXPECT_THROW(reg.counter("y"), PreconditionError);
}

TEST(MetricsRegistryTest, SnapshotsAreSortedByName) {
  MetricsRegistry reg;
  reg.counter("zebra").increment();
  reg.counter("alpha").increment(2);
  reg.counter("mid");
  const auto snap = reg.counters();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, "alpha");
  EXPECT_EQ(snap[0].second, 2u);
  EXPECT_EQ(snap[1].first, "mid");
  EXPECT_EQ(snap[2].first, "zebra");
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsNames) {
  MetricsRegistry reg;
  reg.counter("c").increment(5);
  reg.gauge("g").set(7.5);
  reg.histogram("h", {1.0}).observe(0.5);
  reg.reset();
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.counter("c").value(), 0u);
  EXPECT_EQ(reg.gauge("g").value(), 0.0);
  EXPECT_EQ(reg.histogram("h", {}).count(), 0u);
}

TEST(GaugeTest, AddAccumulates) {
  Gauge g;
  g.add(1.5);
  g.add(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(HistogramTest, BucketEdgesAreInclusiveUpperBounds) {
  // Buckets: (-inf, 1], (1, 2], (2, 4], overflow (4, inf).
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.0);   // bucket 0
  h.observe(1.0);   // bucket 0 — a value equal to the bound lands below it
  h.observe(1.001); // bucket 1
  h.observe(2.0);   // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(4.001); // overflow
  h.observe(100.0); // overflow
  EXPECT_EQ(h.bucketCounts(), (std::vector<std::uint64_t>{2, 2, 1, 2}));
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.minValue(), 0.0);
  EXPECT_DOUBLE_EQ(h.maxValue(), 100.0);
}

TEST(HistogramTest, SumMeanMinMaxTrackObservations) {
  Histogram h({10.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);  // empty histogram is defined, not NaN
  h.observe(2.0);
  h.observe(6.0);
  EXPECT_DOUBLE_EQ(h.sum(), 8.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_DOUBLE_EQ(h.minValue(), 2.0);
  EXPECT_DOUBLE_EQ(h.maxValue(), 6.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucketCounts(), (std::vector<std::uint64_t>{0, 0}));
}

TEST(HistogramTest, RejectsNonIncreasingBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), PreconditionError);
  EXPECT_THROW(Histogram({1.0, 1.0}), PreconditionError);
}

TEST(HistogramTest, ExponentialBoundsArePowersOfTwo) {
  const auto bounds = Histogram::exponentialBounds(5);
  EXPECT_EQ(bounds, (std::vector<double>{1.0, 2.0, 4.0, 8.0, 16.0}));
  const auto scaled = Histogram::exponentialBounds(3, 10.0, 10.0);
  EXPECT_EQ(scaled, (std::vector<double>{10.0, 100.0, 1000.0}));
}

TEST(EnabledFlagTest, TogglesAndRestores) {
  const bool was = enabled();
  setEnabled(true);
  EXPECT_TRUE(enabled());
  setEnabled(false);
  EXPECT_FALSE(enabled());
  setEnabled(was);
}

}  // namespace
}  // namespace dsn::obs
