#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace dsn {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.size(), 0u);
  EXPECT_EQ(g.liveCount(), 0u);
  EXPECT_EQ(g.edgeCount(), 0u);
}

TEST(GraphTest, InitialNodesAreIsolatedAndLive) {
  Graph g(4);
  EXPECT_EQ(g.size(), 4u);
  EXPECT_EQ(g.liveCount(), 4u);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_TRUE(g.isAlive(v));
    EXPECT_EQ(g.degree(v), 0u);
  }
}

TEST(GraphTest, AddNodeReturnsSequentialIds) {
  Graph g;
  EXPECT_EQ(g.addNode(), 0u);
  EXPECT_EQ(g.addNode(), 1u);
  EXPECT_EQ(g.addNode(), 2u);
  EXPECT_EQ(g.liveCount(), 3u);
}

TEST(GraphTest, EdgesAreSymmetric) {
  Graph g(3);
  g.addEdge(0, 1);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(1, 0));
  EXPECT_FALSE(g.hasEdge(0, 2));
  EXPECT_EQ(g.edgeCount(), 1u);
}

TEST(GraphTest, DuplicateEdgeIsNoOp) {
  Graph g(2);
  g.addEdge(0, 1);
  g.addEdge(1, 0);
  EXPECT_EQ(g.edgeCount(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(GraphTest, SelfLoopRejected) {
  Graph g(2);
  EXPECT_THROW(g.addEdge(1, 1), PreconditionError);
}

TEST(GraphTest, RemoveEdge) {
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.removeEdge(0, 1);
  EXPECT_FALSE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(1, 2));
  EXPECT_EQ(g.edgeCount(), 1u);
  // Removing an absent edge is a no-op.
  g.removeEdge(0, 1);
  EXPECT_EQ(g.edgeCount(), 1u);
}

TEST(GraphTest, RemoveNodeDropsIncidentEdges) {
  Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(1, 3);
  g.removeNode(1);
  EXPECT_FALSE(g.isAlive(1));
  EXPECT_EQ(g.liveCount(), 3u);
  EXPECT_EQ(g.edgeCount(), 0u);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_TRUE(g.neighbors(1).empty());
  EXPECT_FALSE(g.hasEdge(0, 1));
}

TEST(GraphTest, DeadNodeIdStaysAllocated) {
  Graph g(3);
  g.removeNode(2);
  EXPECT_EQ(g.size(), 3u);
  const NodeId fresh = g.addNode();
  EXPECT_EQ(fresh, 3u);  // ids are never recycled
}

TEST(GraphTest, OperationsOnDeadNodeThrow) {
  Graph g(2);
  g.removeNode(0);
  EXPECT_THROW(g.addEdge(0, 1), PreconditionError);
  EXPECT_THROW(g.removeNode(0), PreconditionError);
}

TEST(GraphTest, OutOfRangeIdsThrow) {
  Graph g(2);
  EXPECT_THROW(g.addEdge(0, 5), PreconditionError);
  EXPECT_THROW(g.neighbors(9), PreconditionError);
}

TEST(GraphTest, LiveNodesAscending) {
  Graph g(5);
  g.removeNode(1);
  g.removeNode(3);
  EXPECT_EQ(g.liveNodes(), (std::vector<NodeId>{0, 2, 4}));
}

TEST(GraphTest, NeighborsReflectRemovals) {
  Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  g.addEdge(0, 3);
  g.removeNode(2);
  const auto& n = g.neighbors(0);
  EXPECT_EQ(n.size(), 2u);
  EXPECT_TRUE(std::find(n.begin(), n.end(), 2u) == n.end());
}

}  // namespace
}  // namespace dsn
