#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

namespace dsn {
namespace {

Graph pathGraph(std::size_t n) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.addEdge(v, v + 1);
  return g;
}

TEST(BfsTest, DistancesOnPath) {
  const Graph g = pathGraph(5);
  const auto d = bfsDistances(g, 0);
  EXPECT_EQ(d, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(BfsTest, UnreachableIsMinusOne) {
  Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(2, 3);
  const auto d = bfsDistances(g, 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], -1);
  EXPECT_EQ(d[3], -1);
}

TEST(BfsTest, DeadSourceThrows) {
  Graph g(2);
  g.removeNode(0);
  EXPECT_THROW(bfsDistances(g, 0), PreconditionError);
}

TEST(ConnectivityTest, EmptyAndSingletonAreConnected) {
  EXPECT_TRUE(isConnected(Graph{}));
  EXPECT_TRUE(isConnected(Graph{1}));
}

TEST(ConnectivityTest, DetectsDisconnection) {
  Graph g = pathGraph(6);
  EXPECT_TRUE(isConnected(g));
  g.removeEdge(2, 3);
  EXPECT_FALSE(isConnected(g));
}

TEST(ConnectivityTest, DeadNodesIgnored) {
  Graph g = pathGraph(4);
  g.removeEdge(1, 2);
  EXPECT_FALSE(isConnected(g));
  g.removeNode(2);
  g.removeNode(3);
  EXPECT_TRUE(isConnected(g));  // only {0,1} remain
}

TEST(ComponentsTest, CountsAndLabels) {
  Graph g(5);
  g.addEdge(0, 1);
  g.addEdge(3, 4);
  int count = 0;
  const auto comp = connectedComponents(g, &count);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[2], comp[3]);
}

TEST(ComponentsTest, DeadNodesGetMinusOne) {
  Graph g(3);
  g.removeNode(1);
  int count = 0;
  const auto comp = connectedComponents(g, &count);
  EXPECT_EQ(comp[1], -1);
  EXPECT_EQ(count, 2);
}

TEST(ReachabilityTest, ReturnsComponentMembers) {
  Graph g(5);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(3, 4);
  EXPECT_EQ(reachableFrom(g, 0), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(reachableFrom(g, 4), (std::vector<NodeId>{3, 4}));
}

TEST(DiameterTest, PathAndCycle) {
  EXPECT_EQ(diameter(pathGraph(7)), 6);
  Graph cycle(6);
  for (NodeId v = 0; v < 6; ++v) cycle.addEdge(v, (v + 1) % 6);
  EXPECT_EQ(diameter(cycle), 3);
}

TEST(DiameterTest, RequiresConnected) {
  Graph g(3);
  g.addEdge(0, 1);
  EXPECT_THROW(diameter(g), PreconditionError);
}

TEST(EccentricityTest, CenterVsEnd) {
  const Graph g = pathGraph(5);
  EXPECT_EQ(eccentricity(g, 2), 2);
  EXPECT_EQ(eccentricity(g, 0), 4);
}

TEST(DegreeStatsTest, Values) {
  Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  g.addEdge(0, 3);
  const auto s = degreeStats(g);
  EXPECT_EQ(s.maxDegree, 3u);
  EXPECT_EQ(s.minDegree, 1u);
  EXPECT_DOUBLE_EQ(s.meanDegree, 1.5);
}

TEST(InducedSubgraphTest, KeepsOnlySelectedNodesAndEdges) {
  Graph g(5);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(2, 3);
  g.addEdge(3, 4);
  g.addEdge(1, 3);
  const Graph sub = inducedSubgraph(g, {1, 2, 3});
  EXPECT_EQ(sub.size(), g.size());  // same id space
  EXPECT_FALSE(sub.isAlive(0));
  EXPECT_FALSE(sub.isAlive(4));
  EXPECT_TRUE(sub.hasEdge(1, 2));
  EXPECT_TRUE(sub.hasEdge(2, 3));
  EXPECT_TRUE(sub.hasEdge(1, 3));
  EXPECT_FALSE(sub.hasEdge(0, 1));
  EXPECT_EQ(sub.edgeCount(), 3u);
}

TEST(InducedSubgraphTest, RejectsDeadKeepNodes) {
  Graph g(3);
  g.removeNode(1);
  EXPECT_THROW(inducedSubgraph(g, {1}), PreconditionError);
}

}  // namespace
}  // namespace dsn
