// Property tests for the spatial-grid unit-disk structures against a
// brute-force O(n^2) distance scan: the grid is an optimization and must
// be observationally identical to the definition.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "graph/unit_disk.hpp"
#include "util/rng.hpp"

namespace dsn {
namespace {

std::vector<Point2D> randomPoints(Rng& rng, std::size_t n, double side) {
  std::vector<Point2D> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.uniformReal(0.0, side), rng.uniformReal(0.0, side)});
  }
  return points;
}

TEST(UnitDiskPropertyTest, GraphMatchesBruteForce) {
  Rng rng(0xD15C0);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 20 + static_cast<std::size_t>(rng.uniform(100));
    const double side = rng.uniformReal(100.0, 500.0);
    const double range = rng.uniformReal(20.0, 120.0);
    const std::vector<Point2D> points = randomPoints(rng, n, side);

    const Graph g = buildUnitDiskGraph(points, range);
    ASSERT_EQ(g.size(), n);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        const bool expected = u != v && inRange(points[u], points[v], range);
        EXPECT_EQ(g.hasEdge(u, v), expected)
            << "trial " << trial << " edge (" << u << "," << v << ")";
      }
    }
  }
}

TEST(UnitDiskPropertyTest, GridCellBoundariesAreExact) {
  // Points placed exactly `range` apart sit on the unit-disk boundary
  // (edge present: distance <= range) and, at multiples of the cell
  // size, also on grid-cell boundaries — the classic off-by-one-cell
  // bug surface.
  const double range = 50.0;
  const std::vector<Point2D> points = {
      {0.0, 0.0}, {50.0, 0.0}, {100.0, 0.0}, {0.0, 50.0}, {50.001, 50.0}};
  const Graph g = buildUnitDiskGraph(points, range);
  EXPECT_TRUE(g.hasEdge(0, 1));   // exactly at range
  EXPECT_FALSE(g.hasEdge(0, 2));  // 2x range
  EXPECT_TRUE(g.hasEdge(1, 2));
  EXPECT_TRUE(g.hasEdge(0, 3));
  EXPECT_FALSE(g.hasEdge(3, 4));  // just past range
}

TEST(UnitDiskPropertyTest, IndexMatchesBruteForceUnderChurn) {
  Rng rng(0xD15C1);
  const double range = 60.0;
  UnitDiskIndex index(range);
  std::unordered_map<NodeId, Point2D> live;
  NodeId nextId = 0;

  for (int step = 0; step < 400; ++step) {
    const bool doInsert = live.empty() || rng.chance(0.6);
    if (doInsert) {
      const Point2D p{rng.uniformReal(0.0, 400.0),
                      rng.uniformReal(0.0, 400.0)};
      index.insert(nextId, p);
      live.emplace(nextId, p);
      ++nextId;
    } else {
      // Remove a random live id.
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.uniform(live.size())));
      index.remove(it->first);
      live.erase(it);
    }
    ASSERT_EQ(index.size(), live.size());

    // Cross-check a random probe point against the definition.
    const Point2D probe{rng.uniformReal(-50.0, 450.0),
                        rng.uniformReal(-50.0, 450.0)};
    std::vector<NodeId> expected;
    for (const auto& [id, p] : live) {
      if (inRange(probe, p, range)) expected.push_back(id);
    }
    std::vector<NodeId> got = index.queryNeighbors(probe);
    std::sort(expected.begin(), expected.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "step " << step;
  }

  // Stored positions survive the churn.
  for (const auto& [id, p] : live) {
    ASSERT_TRUE(index.contains(id));
    EXPECT_EQ(index.position(id), p);
  }
}

TEST(UnitDiskPropertyTest, UpdatePositionMatchesBruteForceUnderMotion) {
  // The in-place move fast path must be observationally identical to
  // remove + insert. The motion mix deliberately covers both branches:
  // small jitters that stay inside one grid cell and long jumps that
  // migrate between cell buckets (plus moves landing exactly on cell
  // boundaries, the classic off-by-one surface).
  Rng rng(0xD15C2);
  const double range = 50.0;
  UnitDiskIndex index(range);
  std::vector<Point2D> pos;
  const std::size_t n = 60;
  for (NodeId v = 0; v < n; ++v) {
    pos.push_back({rng.uniformReal(0.0, 400.0), rng.uniformReal(0.0, 400.0)});
    index.insert(v, pos.back());
  }

  for (int step = 0; step < 500; ++step) {
    const NodeId v = static_cast<NodeId>(rng.uniform(n));
    Point2D p;
    switch (rng.uniform(3)) {
      case 0:  // same-cell jitter
        p = {pos[v].x + rng.uniformReal(-1.0, 1.0),
             pos[v].y + rng.uniformReal(-1.0, 1.0)};
        break;
      case 1:  // long jump across cells
        p = {rng.uniformReal(0.0, 400.0), rng.uniformReal(0.0, 400.0)};
        break;
      default:  // snap onto a cell-boundary multiple of the range
        p = {range * static_cast<double>(rng.uniform(9)),
             range * static_cast<double>(rng.uniform(9))};
        break;
    }
    index.updatePosition(v, p);
    pos[v] = p;
    ASSERT_EQ(index.size(), n);
    EXPECT_EQ(index.position(v), p);

    // Neighborhood queries match the O(n) definition...
    const NodeId probeId = static_cast<NodeId>(rng.uniform(n));
    std::vector<NodeId> expected;
    for (NodeId u = 0; u < n; ++u) {
      if (u != probeId && inRange(pos[probeId], pos[u], range))
        expected.push_back(u);
    }
    std::vector<NodeId> got = index.queryNeighbors(pos[probeId]);
    got.erase(std::remove(got.begin(), got.end(), probeId), got.end());
    std::sort(expected.begin(), expected.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "step " << step;
  }

  // ...and the final state is identical to an index rebuilt from scratch.
  UnitDiskIndex fresh(range);
  for (NodeId v = 0; v < n; ++v) fresh.insert(v, pos[v]);
  for (int probe = 0; probe < 50; ++probe) {
    const Point2D q{rng.uniformReal(-20.0, 420.0),
                    rng.uniformReal(-20.0, 420.0)};
    std::vector<NodeId> a = index.queryNeighbors(q);
    std::vector<NodeId> b = fresh.queryNeighbors(q);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "probe " << probe;
  }
}

}  // namespace
}  // namespace dsn
