#include "graph/unit_disk.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace dsn {
namespace {

TEST(UnitDiskTest, EdgeIffWithinRange) {
  const std::vector<Point2D> pts{{0, 0}, {30, 0}, {100, 0}};
  const Graph g = buildUnitDiskGraph(pts, 50.0);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_FALSE(g.hasEdge(0, 2));
  EXPECT_FALSE(g.hasEdge(1, 2));  // distance 70 > 50
}

TEST(UnitDiskTest, BoundaryDistanceIsConnected) {
  const std::vector<Point2D> pts{{0, 0}, {50, 0}};
  const Graph g = buildUnitDiskGraph(pts, 50.0);
  EXPECT_TRUE(g.hasEdge(0, 1));  // <= range, not <
}

TEST(UnitDiskTest, MatchesBruteForceOnRandomPoints) {
  Rng rng(123);
  std::vector<Point2D> pts;
  for (int i = 0; i < 200; ++i)
    pts.push_back({rng.uniformReal(0, 500), rng.uniformReal(0, 500)});
  const double range = 60.0;
  const Graph g = buildUnitDiskGraph(pts, range);
  for (NodeId i = 0; i < pts.size(); ++i) {
    for (NodeId j = i + 1; j < pts.size(); ++j) {
      EXPECT_EQ(g.hasEdge(i, j), inRange(pts[i], pts[j], range))
          << "pair " << i << "," << j;
    }
  }
}

TEST(UnitDiskTest, NegativeCoordinatesSupported) {
  const std::vector<Point2D> pts{{-100, -100}, {-70, -100}, {100, 100}};
  const Graph g = buildUnitDiskGraph(pts, 50.0);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_FALSE(g.hasEdge(0, 2));
}

TEST(UnitDiskTest, ZeroRangeRejected) {
  EXPECT_THROW(buildUnitDiskGraph({}, 0.0), PreconditionError);
}

TEST(UnitDiskIndexTest, QueryFindsOnlyInRange) {
  UnitDiskIndex idx(50.0);
  idx.insert(0, {0, 0});
  idx.insert(1, {40, 0});
  idx.insert(2, {200, 200});
  const auto near = idx.queryNeighbors({10, 0});
  EXPECT_EQ(near, (std::vector<NodeId>{0, 1}));
}

TEST(UnitDiskIndexTest, RemoveForgetsPoint) {
  UnitDiskIndex idx(50.0);
  idx.insert(7, {0, 0});
  EXPECT_TRUE(idx.contains(7));
  idx.remove(7);
  EXPECT_FALSE(idx.contains(7));
  EXPECT_TRUE(idx.queryNeighbors({0, 0}).empty());
  EXPECT_THROW(idx.remove(7), PreconditionError);
}

TEST(UnitDiskIndexTest, DuplicateIdRejected) {
  UnitDiskIndex idx(10.0);
  idx.insert(1, {0, 0});
  EXPECT_THROW(idx.insert(1, {5, 5}), PreconditionError);
}

TEST(UnitDiskIndexTest, PositionRoundTrips) {
  UnitDiskIndex idx(10.0);
  idx.insert(3, {1.5, -2.5});
  EXPECT_EQ(idx.position(3), (Point2D{1.5, -2.5}));
  EXPECT_THROW(idx.position(4), PreconditionError);
}

TEST(UnitDiskIndexTest, MatchesBruteForceAcrossCells) {
  Rng rng(77);
  UnitDiskIndex idx(35.0);
  std::vector<Point2D> pts;
  for (NodeId i = 0; i < 150; ++i) {
    const Point2D p{rng.uniformReal(-200, 200), rng.uniformReal(-200, 200)};
    pts.push_back(p);
    idx.insert(i, p);
  }
  for (int probe = 0; probe < 50; ++probe) {
    const Point2D q{rng.uniformReal(-200, 200), rng.uniformReal(-200, 200)};
    std::vector<NodeId> expected;
    for (NodeId i = 0; i < pts.size(); ++i)
      if (inRange(pts[i], q, 35.0)) expected.push_back(i);
    EXPECT_EQ(idx.queryNeighbors(q), expected);
  }
}

}  // namespace
}  // namespace dsn
