#include "graph/tiling.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace dsn {
namespace {

/// Every node lands in exactly one tile, member lists are node-ascending,
/// local indices address a dense [0, tileSize) range, and maxTileSize
/// matches the biggest member list.
void expectWellFormed(const TilePartition& tiles, std::size_t nodeCount) {
  ASSERT_EQ(tiles.nodeCount(), nodeCount);
  std::size_t total = 0;
  std::size_t biggest = 0;
  for (std::uint32_t t = 0; t < tiles.tileCount(); ++t) {
    const auto span = tiles.members(t);
    total += span.size();
    biggest = std::max(biggest, span.size());
    NodeId prev = 0;
    std::uint32_t local = 0;
    for (const NodeId v : span) {
      if (local > 0) {
        EXPECT_LT(prev, v) << "tile " << t;
      }
      EXPECT_EQ(tiles.tileOf(v), t);
      EXPECT_EQ(tiles.localIndex(v), local);
      prev = v;
      ++local;
    }
  }
  EXPECT_EQ(total, nodeCount);
  EXPECT_EQ(tiles.maxTileSize(), biggest);
}

std::vector<Point2D> randomPoints(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point2D> pts(n);
  for (auto& p : pts) {
    p.x = rng.uniformReal(0.0, 1000.0);
    p.y = rng.uniformReal(0.0, 1000.0);
  }
  return pts;
}

TEST(TilingTest, SpatialPartitionIsWellFormed) {
  const auto pts = randomPoints(500, 42);
  const TilePartition tiles = TilePartition::spatial(pts, 50.0, 64);
  EXPECT_GE(tiles.tileCount(), 1u);
  expectWellFormed(tiles, pts.size());
}

TEST(TilingTest, SpatialCellsNeverDropBelowMinEdge) {
  // 1000x1000 box with a 200-unit floor: at most 5x5 = 25 cells no
  // matter how many tiles were requested.
  const auto pts = randomPoints(300, 7);
  const TilePartition tiles = TilePartition::spatial(pts, 200.0, 10000);
  EXPECT_LE(tiles.tileCount(), 25u);
  expectWellFormed(tiles, pts.size());
}

TEST(TilingTest, SpatialIsPureFunctionOfInputs) {
  const auto pts = randomPoints(400, 11);
  const TilePartition a = TilePartition::spatial(pts, 50.0, 32);
  const TilePartition b = TilePartition::spatial(pts, 50.0, 32);
  ASSERT_EQ(a.tileCount(), b.tileCount());
  for (NodeId v = 0; v < pts.size(); ++v) {
    EXPECT_EQ(a.tileOf(v), b.tileOf(v));
    EXPECT_EQ(a.localIndex(v), b.localIndex(v));
  }
}

TEST(TilingTest, SpatialNearbyPointsShareTiles) {
  // A tight cluster far from a second tight cluster: with cells at least
  // as large as the cluster diameter, each cluster is spread over at
  // most a handful of tiles, not one tile per point.
  std::vector<Point2D> pts;
  for (int i = 0; i < 50; ++i)
    pts.push_back({10.0 + 0.1 * i, 10.0});
  for (int i = 0; i < 50; ++i)
    pts.push_back({900.0 + 0.1 * i, 900.0});
  const TilePartition tiles = TilePartition::spatial(pts, 50.0, 64);
  std::set<std::uint32_t> low, high;
  for (NodeId v = 0; v < 50; ++v) low.insert(tiles.tileOf(v));
  for (NodeId v = 50; v < 100; ++v) high.insert(tiles.tileOf(v));
  EXPECT_LE(low.size(), 2u);
  EXPECT_LE(high.size(), 2u);
  for (const std::uint32_t t : low) EXPECT_EQ(high.count(t), 0u);
}

TEST(TilingTest, BlockedPartitionIsWellFormed) {
  const TilePartition tiles = TilePartition::blocked(1000, 8);
  EXPECT_GE(tiles.tileCount(), 1u);
  EXPECT_LE(tiles.tileCount(), 8u);
  expectWellFormed(tiles, 1000);
  // Contiguous id ranges: tile index is non-decreasing in node id.
  for (NodeId v = 1; v < 1000; ++v)
    EXPECT_LE(tiles.tileOf(v - 1), tiles.tileOf(v));
}

TEST(TilingTest, BlockedRespectsMinBlock) {
  // 40 nodes with a 32-node floor: no way to make 16 tiles.
  const TilePartition tiles = TilePartition::blocked(40, 16);
  EXPECT_LE(tiles.tileCount(),
            static_cast<std::uint32_t>(40 / TilePartition::kMinBlock) + 1);
  expectWellFormed(tiles, 40);
}

TEST(TilingTest, SingleTileDegenerate) {
  const auto pts = randomPoints(64, 3);
  const TilePartition tiles = TilePartition::spatial(pts, 5000.0, 1);
  EXPECT_EQ(tiles.tileCount(), 1u);
  expectWellFormed(tiles, pts.size());
}

TEST(TilingTest, EmptyDeployment) {
  const TilePartition spatial = TilePartition::spatial({}, 50.0, 8);
  EXPECT_EQ(spatial.nodeCount(), 0u);
  const TilePartition blocked = TilePartition::blocked(0, 8);
  EXPECT_EQ(blocked.nodeCount(), 0u);
}

}  // namespace
}  // namespace dsn
