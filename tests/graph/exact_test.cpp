// Exact small-graph solvers.
#include <gtest/gtest.h>

#include "graph/deploy.hpp"
#include "graph/domination.hpp"
#include "graph/exact.hpp"
#include "graph/unit_disk.hpp"
#include "util/rng.hpp"

namespace dsn {
namespace {

Graph pathGraph(std::size_t n) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.addEdge(v, v + 1);
  return g;
}

TEST(ExactMdsTest, KnownOptimaOnPaths) {
  // Path P_n has domination number ceil(n/3).
  for (std::size_t n : {1u, 2u, 3u, 4u, 6u, 7u, 9u, 10u}) {
    const Graph g = pathGraph(n);
    const auto mds = exactMinimumDominatingSet(g);
    EXPECT_EQ(mds.size(), (n + 2) / 3) << "P_" << n;
    EXPECT_TRUE(isDominatingSet(g, mds));
  }
}

TEST(ExactMdsTest, StarIsOne) {
  Graph g(7);
  for (NodeId v = 1; v < 7; ++v) g.addEdge(0, v);
  EXPECT_EQ(exactMinimumDominatingSet(g).size(), 1u);
}

TEST(ExactMdsTest, NeverWorseThanGreedy) {
  Rng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    const auto pts = deployIncrementalAttach(
        {Field::squareUnits(3), 70.0, 18}, rng);
    const Graph g = buildUnitDiskGraph(pts, 70.0);
    const auto exact = exactMinimumDominatingSet(g);
    const auto greedy = greedyDominatingSet(g);
    EXPECT_TRUE(isDominatingSet(g, exact));
    EXPECT_LE(exact.size(), greedy.size());
  }
}

TEST(ExactMdsTest, TooLargeRejected) {
  Graph g(30);
  EXPECT_THROW(exactMinimumDominatingSet(g, 26), PreconditionError);
}

TEST(ExactCliqueCoverTest, KnownOptima) {
  // Triangle: one clique. P_4: two cliques. C_5: three.
  Graph tri(3);
  tri.addEdge(0, 1);
  tri.addEdge(1, 2);
  tri.addEdge(0, 2);
  EXPECT_EQ(exactMinimumCliqueCover(tri).size(), 1u);

  EXPECT_EQ(exactMinimumCliqueCover(pathGraph(4)).size(), 2u);

  Graph c5(5);
  for (NodeId v = 0; v < 5; ++v) c5.addEdge(v, (v + 1) % 5);
  EXPECT_EQ(exactMinimumCliqueCover(c5).size(), 3u);
}

TEST(ExactCliqueCoverTest, CoverIsValidAndNeverWorseThanGreedy) {
  Rng rng(777);
  for (int trial = 0; trial < 8; ++trial) {
    const auto pts = deployIncrementalAttach(
        {Field::squareUnits(2), 80.0, 13}, rng);
    const Graph g = buildUnitDiskGraph(pts, 80.0);
    const auto cover = exactMinimumCliqueCover(g);
    const auto greedy = greedyCliqueCover(g);
    EXPECT_LE(cover.size(), greedy.size());
    // Every class is a clique; every node covered exactly once.
    std::vector<int> seen(g.size(), 0);
    for (const auto& clique : cover) {
      for (std::size_t i = 0; i < clique.size(); ++i)
        for (std::size_t j = i + 1; j < clique.size(); ++j)
          EXPECT_TRUE(g.hasEdge(clique[i], clique[j]));
      for (NodeId v : clique) ++seen[v];
    }
    for (NodeId v : g.liveNodes()) EXPECT_EQ(seen[v], 1);
  }
}

TEST(ExactCliqueCoverTest, EmptyAndSingleton) {
  Graph g0;
  EXPECT_TRUE(exactMinimumCliqueCover(g0).empty());
  Graph g1(1);
  EXPECT_EQ(exactMinimumCliqueCover(g1).size(), 1u);
}

}  // namespace
}  // namespace dsn
