#include "graph/domination.hpp"

#include <gtest/gtest.h>

#include "graph/deploy.hpp"
#include "graph/unit_disk.hpp"
#include "util/rng.hpp"

namespace dsn {
namespace {

Graph starGraph(std::size_t leaves) {
  Graph g(leaves + 1);
  for (NodeId v = 1; v <= leaves; ++v) g.addEdge(0, v);
  return g;
}

TEST(DominatingSetTest, StarNeedsOnlyHub) {
  const Graph g = starGraph(6);
  const auto ds = greedyDominatingSet(g);
  EXPECT_EQ(ds, std::vector<NodeId>{0});
  EXPECT_TRUE(isDominatingSet(g, ds));
}

TEST(DominatingSetTest, IsolatedNodesIncluded) {
  Graph g(3);  // no edges
  const auto ds = greedyDominatingSet(g);
  EXPECT_EQ(ds.size(), 3u);
}

TEST(DominatingSetTest, GreedyIsAlwaysDominating) {
  Rng rng(55);
  const DeployConfig cfg{Field::squareUnits(6), 60.0, 120};
  const auto pts = deployIncrementalAttach(cfg, rng);
  const Graph g = buildUnitDiskGraph(pts, cfg.range);
  EXPECT_TRUE(isDominatingSet(g, greedyDominatingSet(g)));
}

TEST(IsDominatingSetTest, DetectsNonDominating) {
  const Graph g = starGraph(3);
  EXPECT_FALSE(isDominatingSet(g, {1}));     // leaf misses other leaves
  EXPECT_TRUE(isDominatingSet(g, {1, 0}));
}

TEST(IsDominatingSetTest, DeadMemberInvalidates) {
  Graph g = starGraph(3);
  g.removeNode(0);
  EXPECT_FALSE(isDominatingSet(g, {0}));
}

TEST(MisTest, PathGraphAlternates) {
  Graph g(5);
  for (NodeId v = 0; v + 1 < 5; ++v) g.addEdge(v, v + 1);
  const auto mis = greedyMaximalIndependentSet(g);
  EXPECT_EQ(mis, (std::vector<NodeId>{0, 2, 4}));
  EXPECT_TRUE(isIndependentSet(g, mis));
}

TEST(MisTest, IndependentAndMaximalOnRandomUdg) {
  Rng rng(66);
  const DeployConfig cfg{Field::squareUnits(6), 60.0, 100};
  const auto pts = deployIncrementalAttach(cfg, rng);
  const Graph g = buildUnitDiskGraph(pts, cfg.range);
  const auto mis = greedyMaximalIndependentSet(g);
  EXPECT_TRUE(isIndependentSet(g, mis));
  // Maximal: MIS is also a dominating set.
  EXPECT_TRUE(isDominatingSet(g, mis));
}

TEST(IsIndependentSetTest, DetectsAdjacency) {
  Graph g(3);
  g.addEdge(0, 1);
  EXPECT_FALSE(isIndependentSet(g, {0, 1}));
  EXPECT_TRUE(isIndependentSet(g, {0, 2}));
}

TEST(CliqueCoverTest, TriangleIsOneClique) {
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(0, 2);
  const auto cover = greedyCliqueCover(g);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].size(), 3u);
}

TEST(CliqueCoverTest, CoversEveryNodeExactlyOnce) {
  Rng rng(77);
  const DeployConfig cfg{Field::squareUnits(5), 70.0, 80};
  const auto pts = deployIncrementalAttach(cfg, rng);
  const Graph g = buildUnitDiskGraph(pts, cfg.range);
  const auto cover = greedyCliqueCover(g);
  std::vector<int> seen(g.size(), 0);
  for (const auto& clique : cover) {
    // Clique property.
    for (std::size_t i = 0; i < clique.size(); ++i)
      for (std::size_t j = i + 1; j < clique.size(); ++j)
        EXPECT_TRUE(g.hasEdge(clique[i], clique[j]));
    for (NodeId v : clique) ++seen[v];
  }
  for (NodeId v : g.liveNodes()) EXPECT_EQ(seen[v], 1) << "node " << v;
}

TEST(CliqueCoverTest, PathNeedsAboutHalf) {
  Graph g(6);
  for (NodeId v = 0; v + 1 < 6; ++v) g.addEdge(v, v + 1);
  const auto cover = greedyCliqueCover(g);
  EXPECT_EQ(cover.size(), 3u);  // {0,1},{2,3},{4,5}
}

}  // namespace
}  // namespace dsn
