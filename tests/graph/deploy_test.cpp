#include "graph/deploy.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/algorithms.hpp"
#include "graph/unit_disk.hpp"
#include "util/rng.hpp"

namespace dsn {
namespace {

TEST(FieldTest, SquareUnits) {
  const Field f = Field::squareUnits(10, 100.0);
  EXPECT_DOUBLE_EQ(f.width, 1000.0);
  EXPECT_DOUBLE_EQ(f.height, 1000.0);
  EXPECT_THROW(Field::squareUnits(0), PreconditionError);
}

TEST(DeployTest, UniformStaysInsideField) {
  Rng rng(1);
  const DeployConfig cfg{Field{200, 100}, 30.0, 500};
  const auto pts = deployUniform(cfg, rng);
  ASSERT_EQ(pts.size(), 500u);
  for (const auto& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 200.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 100.0);
  }
}

TEST(DeployTest, UniformIsSeedDeterministic) {
  const DeployConfig cfg{Field{100, 100}, 10.0, 50};
  Rng a(9), b(9);
  EXPECT_EQ(deployUniform(cfg, a), deployUniform(cfg, b));
}

TEST(DeployTest, ZeroNodes) {
  Rng rng(2);
  const DeployConfig cfg{Field{10, 10}, 5.0, 0};
  EXPECT_TRUE(deployUniform(cfg, rng).empty());
  EXPECT_TRUE(deployIncrementalAttach(cfg, rng).empty());
}

TEST(DeployTest, InvalidConfigRejected) {
  Rng rng(3);
  EXPECT_THROW(deployUniform({Field{0, 10}, 5.0, 1}, rng),
               PreconditionError);
  EXPECT_THROW(deployUniform({Field{10, 10}, 0.0, 1}, rng),
               PreconditionError);
}

// The paper's sparse settings: incremental attach must produce a
// connected unit-disk graph at every density.
class IncrementalAttachTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(IncrementalAttachTest, ProducesConnectedGraph) {
  const auto [seed, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const DeployConfig cfg{Field::squareUnits(10), 50.0, n};
  const auto pts = deployIncrementalAttach(cfg, rng);
  ASSERT_EQ(pts.size(), n);
  for (const auto& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, cfg.field.width);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, cfg.field.height);
  }
  const Graph g = buildUnitDiskGraph(pts, cfg.range);
  EXPECT_TRUE(isConnected(g)) << "seed=" << seed << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSizes, IncrementalAttachTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{20}, std::size_t{100},
                                         std::size_t{300})));

// Every prefix is connected too — the sequence is a valid node-move-in
// order (each node lands within range of an earlier one).
TEST(DeployTest, IncrementalPrefixesAreAttachable) {
  Rng rng(11);
  const DeployConfig cfg{Field::squareUnits(8), 50.0, 150};
  const auto pts = deployIncrementalAttach(cfg, rng);
  UnitDiskIndex idx(cfg.range);
  idx.insert(0, pts[0]);
  for (NodeId i = 1; i < pts.size(); ++i) {
    EXPECT_FALSE(idx.queryNeighbors(pts[i]).empty())
        << "node " << i << " has no earlier neighbor";
    idx.insert(i, pts[i]);
  }
}

TEST(DeployTest, GridNeighborsWithinRange) {
  const DeployConfig cfg{Field{400, 400}, 50.0, 30};
  const auto pts = deployGrid(cfg);
  ASSERT_EQ(pts.size(), 30u);
  const Graph g = buildUnitDiskGraph(pts, cfg.range);
  EXPECT_TRUE(isConnected(g));
}

TEST(DeployTest, LineIsAPath) {
  const auto pts = deployLine(10, 50.0);
  const Graph g = buildUnitDiskGraph(pts, 50.0);
  EXPECT_TRUE(isConnected(g));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(9), 1u);
  for (NodeId v = 1; v < 9; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_EQ(diameter(g), 9);
}

TEST(DeployTest, StarHubConnectsToAllLeaves) {
  const auto pts = deployStar(8, 50.0);
  const Graph g = buildUnitDiskGraph(pts, 50.0);
  EXPECT_EQ(g.degree(0), 7u);
  EXPECT_TRUE(isConnected(g));
}

TEST(DeployTest, StarFewLeavesAreIndependent) {
  // With 5 leaves on the circle, adjacent leaves are ~1.18r apart.
  const auto pts = deployStar(6, 50.0);
  const Graph g = buildUnitDiskGraph(pts, 50.0);
  for (NodeId i = 1; i < 6; ++i)
    for (NodeId j = i + 1; j < 6; ++j)
      EXPECT_FALSE(g.hasEdge(i, j)) << i << "," << j;
}

}  // namespace
}  // namespace dsn
