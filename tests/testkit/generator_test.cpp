// Properties of the fuzz op-program generator (testkit/program.hpp).
#include "testkit/program.hpp"

#include <gtest/gtest.h>

#include <set>

#include "testkit/seeds.hpp"

namespace dsn::testkit {
namespace {

bool sameOp(const FuzzOp& a, const FuzzOp& b) {
  return a.kind == b.kind && a.pick == b.pick && a.position == b.position &&
         a.scheme == b.scheme && a.faultRegime == b.faultRegime &&
         a.dropProbability == b.dropProbability && a.group == b.group &&
         a.memberPick == b.memberPick && a.repairBudget == b.repairBudget;
}

bool sameProgram(const FuzzProgram& a, const FuzzProgram& b) {
  if (a.seed != b.seed || a.nodeCount != b.nodeCount ||
      a.fieldUnits != b.fieldUnits || a.range != b.range ||
      a.ops.size() != b.ops.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    if (!sameOp(a.ops[i], b.ops[i])) return false;
  }
  return true;
}

TEST(GeneratorTest, DeterministicForFixedSeed) {
  const GeneratorKnobs knobs;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const std::uint64_t seed = episodeSeed(1, i);
    EXPECT_TRUE(sameProgram(generateProgram(knobs, seed),
                            generateProgram(knobs, seed)))
        << "episode " << i;
  }
}

TEST(GeneratorTest, RespectsSizeKnobs) {
  GeneratorKnobs knobs;
  knobs.minNodes = 10;
  knobs.maxNodes = 20;
  knobs.minOps = 3;
  knobs.maxOps = 9;
  for (std::uint64_t i = 0; i < 50; ++i) {
    const FuzzProgram p = generateProgram(knobs, episodeSeed(7, i));
    EXPECT_GE(p.nodeCount, knobs.minNodes);
    EXPECT_LE(p.nodeCount, knobs.maxNodes);
    EXPECT_GE(p.ops.size(), knobs.minOps);
    // The trailing never-leave-stale repair may add one op past maxOps.
    EXPECT_LE(p.ops.size(), knobs.maxOps + 1);
    EXPECT_EQ(p.fieldUnits, knobs.fieldUnits);
    EXPECT_EQ(p.range, knobs.range);
  }
}

// The generator's stale-structure model: crashes leave the structure
// stale until a repair. Programs must never *end* stale, so the final
// structural cross-check of every episode runs on a repaired net.
TEST(GeneratorTest, NeverEndsStale) {
  const GeneratorKnobs knobs;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const FuzzProgram p = generateProgram(knobs, episodeSeed(3, i));
    bool stale = false;
    for (const FuzzOp& op : p.ops) {
      if (op.kind == OpKind::kCrash) stale = true;
      if (op.kind == OpKind::kRepair) stale = false;
    }
    EXPECT_FALSE(stale) << "episode " << i << " ends with a stale structure";
  }
}

TEST(GeneratorTest, DistinctSeedsProduceDistinctPrograms) {
  const GeneratorKnobs knobs;
  std::set<std::pair<std::size_t, std::size_t>> shapes;
  bool anyDiffer = false;
  FuzzProgram first = generateProgram(knobs, episodeSeed(1, 0));
  for (std::uint64_t i = 1; i < 16; ++i) {
    const FuzzProgram p = generateProgram(knobs, episodeSeed(1, i));
    if (!sameProgram(first, p)) anyDiffer = true;
    shapes.insert({p.nodeCount, p.ops.size()});
  }
  EXPECT_TRUE(anyDiffer);
  // Sizes alone should already spread over several values.
  EXPECT_GT(shapes.size(), 4u);
}

TEST(GeneratorTest, OpKindNamesAreStable) {
  EXPECT_STREQ(toString(OpKind::kJoin), "join");
  EXPECT_STREQ(toString(OpKind::kLeave), "leave");
  EXPECT_STREQ(toString(OpKind::kCrash), "crash");
  EXPECT_STREQ(toString(OpKind::kFaultFlip), "faults");
  EXPECT_STREQ(toString(OpKind::kRepair), "repair");
  EXPECT_STREQ(toString(OpKind::kBroadcast), "broadcast");
  EXPECT_STREQ(toString(OpKind::kReliableBroadcast), "rbroadcast");
  EXPECT_STREQ(toString(OpKind::kMulticast), "multicast");
}

// Episode seed streams must not collide across nearby indices or bases
// (full collision sweep lives in tests/core/seed_streams_test.cpp).
TEST(GeneratorTest, EpisodeSeedsSpread) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 1; base <= 4; ++base) {
    for (std::uint64_t i = 0; i < 64; ++i) {
      EXPECT_TRUE(seen.insert(episodeSeed(base, i)).second);
    }
  }
}

}  // namespace
}  // namespace dsn::testkit
