// The fuzz oracles against known-good (and deliberately corrupted)
// inputs: spec checker, CFF plan seam, first-principles reference
// simulator, and the trace-consistency axioms.
#include <gtest/gtest.h>

#include <sstream>

#include "broadcast/cff_flooding.hpp"
#include "core/sensor_network.hpp"
#include "testkit/reference_radio.hpp"
#include "testkit/spec_check.hpp"

namespace dsn::testkit {
namespace {

SensorNetwork makeNet(std::size_t nodes, std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.field = Field::squareUnits(4);
  cfg.nodeCount = nodes;
  cfg.seed = seed;
  return SensorNetwork(cfg);
}

/// First net node that is not the root (deterministic non-trivial
/// source, so the plan has a real source->root path leg).
NodeId nonRootSource(const SensorNetwork& net) {
  const ClusterNet& cn = net.clusterNet();
  for (NodeId v = 0; v < net.graph().size(); ++v) {
    if (cn.contains(v) && v != cn.root()) return v;
  }
  return cn.root();
}

TEST(CffSwarmTest, SwarmRunMatchesPerObjectPlanRunExactly) {
  // runCffBroadcast drives one SoA CffSwarm; runCffPlan drives the
  // legacy per-object CffNodeProtocol machines from the identical plan.
  // Same schedule, same simulator: the runs must agree event for event —
  // this pins the SoA port to the original state machine.
  for (std::uint64_t seed : {std::uint64_t{5}, std::uint64_t{23},
                             std::uint64_t{2007}}) {
    SensorNetwork net = makeNet(90, seed);
    const NodeId source = nonRootSource(net);
    ProtocolOptions opts;
    opts.traceCapacity = 1 << 15;

    const BroadcastRun swarm =
        net.broadcast(BroadcastScheme::kCff, source, 0xDA7A, opts);
    const CffPlan plan =
        buildCffPlan(net.clusterNet(), source, 0xDA7A, opts);
    const BroadcastRun objects = runCffPlan(net.clusterNet(), plan, opts);

    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_EQ(swarm.sim.rounds, objects.sim.rounds);
    EXPECT_EQ(swarm.sim.completed, objects.sim.completed);
    EXPECT_EQ(swarm.sim.totalTransmissions, objects.sim.totalTransmissions);
    EXPECT_EQ(swarm.sim.totalDeliveries, objects.sim.totalDeliveries);
    EXPECT_EQ(swarm.sim.totalCollisions, objects.sim.totalCollisions);
    EXPECT_EQ(swarm.intended, objects.intended);
    EXPECT_EQ(swarm.delivered, objects.delivered);
    EXPECT_EQ(swarm.lastDeliveryRound, objects.lastDeliveryRound);
    EXPECT_EQ(swarm.deliveryRound, objects.deliveryRound);
    EXPECT_EQ(swarm.listenRounds, objects.listenRounds);
    EXPECT_EQ(swarm.transmitRounds, objects.transmitRounds);
    ASSERT_EQ(swarm.trace.events().size(), objects.trace.events().size());
    for (std::size_t i = 0; i < swarm.trace.events().size(); ++i) {
      const TraceEvent& x = swarm.trace.events()[i];
      const TraceEvent& y = objects.trace.events()[i];
      EXPECT_EQ(x.type, y.type) << "event " << i;
      EXPECT_EQ(x.round, y.round) << "event " << i;
      EXPECT_EQ(x.node, y.node) << "event " << i;
      EXPECT_EQ(x.peer, y.peer) << "event " << i;
    }
  }
}

TEST(SpecCheckTest, CleanOnFreshDeployments) {
  for (std::uint64_t seed : {std::uint64_t{3}, std::uint64_t{7},
                             std::uint64_t{2007}}) {
    SensorNetwork net = makeNet(70, seed);
    ASSERT_TRUE(net.validate().ok());
    const auto issues = checkSpec(net.clusterNet());
    EXPECT_TRUE(issues.empty())
        << "seed " << seed << ": " << describeIssues(issues);
  }
}

TEST(SpecCheckTest, AgreesWithValidatorUnderChurn) {
  SensorNetwork net = makeNet(60, 11);
  bool removed = false;
  net.removeSensor(5);
  net.addSensor({150.0, 210.0}, &removed);
  net.removeSensor(9);
  ASSERT_TRUE(net.validate().ok());
  EXPECT_TRUE(checkSpec(net.clusterNet()).empty());
}

TEST(SpecCheckTest, FlagsStaleStructureAfterCrash) {
  SensorNetwork net = makeNet(50, 5);
  // Crash a non-root node: the structure now references a dead node.
  const NodeId victim = nonRootSource(net);
  net.crashSensor(victim);
  ASSERT_TRUE(net.hasStaleStructure());
  const auto issues = checkSpec(net.clusterNet());
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues.front().cls, "spec-stale");
  // And both oracles agree the repaired net is clean again.
  net.repairAfterFailures();
  EXPECT_TRUE(net.validate().ok());
  EXPECT_TRUE(checkSpec(net.clusterNet()).empty());
}

// The plan seam must be behaviourally invisible: building the plan and
// running it reproduces runCffBroadcast exactly.
TEST(CffPlanTest, UnmodifiedPlanMatchesRunCffBroadcast) {
  SensorNetwork net = makeNet(70, 13);
  const NodeId source = nonRootSource(net);
  ProtocolOptions options;
  options.traceCapacity = 8192;

  const CffPlan plan =
      buildCffPlan(net.clusterNet(), source, 0xDA7A, options);
  const BroadcastRun direct =
      runCffBroadcast(net.clusterNet(), source, 0xDA7A, options);
  const BroadcastRun viaPlan = runCffPlan(net.clusterNet(), plan, options);

  EXPECT_EQ(viaPlan.delivered, direct.delivered);
  EXPECT_EQ(viaPlan.transmissions, direct.transmissions);
  EXPECT_EQ(viaPlan.collisions, direct.collisions);
  EXPECT_EQ(viaPlan.lastDeliveryRound, direct.lastDeliveryRound);
  EXPECT_EQ(viaPlan.scheduleLength, direct.scheduleLength);
  EXPECT_EQ(viaPlan.deliveryRound, direct.deliveryRound);
  EXPECT_TRUE(viaPlan.allDelivered());
}

TEST(CffPlanTest, ReferenceSimulatorAgreesWithProduction) {
  for (std::uint64_t seed : {std::uint64_t{13}, std::uint64_t{21},
                             std::uint64_t{34}}) {
    SensorNetwork net = makeNet(60, seed);
    const NodeId source = nonRootSource(net);
    const CffPlan plan = buildCffPlan(net.clusterNet(), source, 0xDA7A);

    const BroadcastRun prod = runCffPlan(net.clusterNet(), plan);
    const ReferenceRun ref = runCffPlanReference(net.graph(), plan);

    EXPECT_EQ(ref.intended, prod.intended) << "seed " << seed;
    EXPECT_EQ(ref.delivered, prod.delivered) << "seed " << seed;
    EXPECT_EQ(ref.transmissions, prod.transmissions) << "seed " << seed;
    EXPECT_EQ(ref.collisions, prod.collisions) << "seed " << seed;
    EXPECT_EQ(ref.deliveryRound, prod.deliveryRound) << "seed " << seed;
  }
}

// The injected slot-collision bug starves some listener, and the
// coverage oracle sees it — in both simulators identically.
TEST(CffPlanTest, InjectedSlotBugBreaksCoverage) {
  bool injectedSomewhere = false;
  for (std::uint64_t seed = 1; seed <= 12 && !injectedSomewhere; ++seed) {
    SensorNetwork net = makeNet(80, seed);
    const NodeId source = net.clusterNet().root();
    CffPlan plan = buildCffPlan(net.clusterNet(), source, 0xDA7A);
    if (!injectCffSlotCollision(plan, net.clusterNet())) continue;
    injectedSomewhere = true;

    const BroadcastRun prod = runCffPlan(net.clusterNet(), plan);
    const ReferenceRun ref = runCffPlanReference(net.graph(), plan);
    EXPECT_LT(prod.delivered, prod.intended)
        << "seed " << seed << ": corrupted plan still reached everyone";
    EXPECT_EQ(ref.delivered, prod.delivered) << "seed " << seed;
  }
  EXPECT_TRUE(injectedSomewhere)
      << "no deployment offered a vulnerable listener";
}

TEST(TraceConsistencyTest, AcceptsRealBroadcastTraces) {
  SensorNetwork net = makeNet(60, 17);
  ProtocolOptions options;
  options.traceCapacity = 16384;
  const BroadcastRun run =
      runCffBroadcast(net.clusterNet(), net.clusterNet().root(), 0xDA7A,
                      options);
  ASSERT_EQ(run.trace.droppedEvents(), 0u);
  const auto issues =
      checkTraceConsistency(run.trace, net.graph(), options.channels);
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST(TraceConsistencyTest, RejectsUnjustifiedReceive) {
  SensorNetwork net = makeNet(30, 19);
  Trace doctored(16);
  // A receive with no matching on-air transmission anywhere.
  doctored.record({TraceEventType::kReceive, 2, 0, 1, 0, MsgKind::kData});
  const auto issues = checkTraceConsistency(doctored, net.graph(), 1);
  EXPECT_FALSE(issues.empty());
}

TEST(TraceConsistencyTest, RejectsPhantomCollision) {
  SensorNetwork net = makeNet(30, 19);
  const NodeId listener = 0;
  ASSERT_FALSE(net.graph().neighbors(listener).empty());
  const NodeId talker = net.graph().neighbors(listener).front();
  Trace doctored(16);
  // One transmitter on the air, yet a collision is claimed at a
  // neighbor: the axioms require at least two.
  doctored.record({TraceEventType::kTransmit, 4, talker, kInvalidNode, 0,
                   MsgKind::kData});
  doctored.record({TraceEventType::kCollision, 4, listener, kInvalidNode, 0,
                   MsgKind::kData});
  const auto issues = checkTraceConsistency(doctored, net.graph(), 1);
  EXPECT_FALSE(issues.empty());
}

TEST(TraceConsistencyTest, SkipsOverflowedTraces) {
  SensorNetwork net = makeNet(30, 19);
  Trace tiny(1);
  tiny.record({TraceEventType::kReceive, 2, 0, 1, 0, MsgKind::kData});
  tiny.record({TraceEventType::kReceive, 3, 0, 1, 0, MsgKind::kData});
  ASSERT_GT(tiny.droppedEvents(), 0u);
  // A partial view must not be judged at all.
  EXPECT_TRUE(checkTraceConsistency(tiny, net.graph(), 1).empty());
}

}  // namespace
}  // namespace dsn::testkit
