// Shrinker behaviour, including the harness's end-to-end acceptance
// check: a deliberately injected CFF slot-assignment bug is caught by
// the oracles and minimized to a short, replayable reproduction.
#include "testkit/shrink.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "testkit/fuzz.hpp"
#include "testkit/seeds.hpp"

namespace dsn::testkit {
namespace {

/// Scans episodes under bug injection until one fails (the injection
/// needs a broadcast op on a deployment with a vulnerable listener, so
/// not every episode trips it).
FuzzProgram findInjectedFailure(const EpisodeOptions& options,
                                EpisodeResult* result) {
  const GeneratorKnobs knobs;
  for (std::uint64_t i = 0; i < 50; ++i) {
    FuzzProgram p = generateProgram(knobs, episodeSeed(1, i));
    EpisodeResult r = runEpisode(p, options);
    if (!r.ok) {
      *result = r;
      return p;
    }
  }
  return {};
}

TEST(ShrinkTest, InjectedCffSlotBugIsCaughtAndShrunkSmall) {
  EpisodeOptions options;
  options.injectCffSlotBug = true;

  EpisodeResult original;
  const FuzzProgram failing = findInjectedFailure(options, &original);
  ASSERT_FALSE(failing.ops.empty())
      << "no episode tripped the injected bug within the scan budget";
  EXPECT_EQ(original.failureClass, "cff-plan-coverage");

  const ShrinkResult shrink = shrinkProgram(failing, options);

  // The acceptance bound: the reproduction is a handful of ops, not a
  // 28-op episode (in practice it lands at 1-2 ops).
  EXPECT_FALSE(shrink.failure.ok);
  EXPECT_LE(shrink.program.ops.size(), 12u);
  EXPECT_LE(shrink.program.nodeCount, failing.nodeCount);
  EXPECT_GT(shrink.episodesRun, 0u);

  // The minimized program replays to the same failure...
  const EpisodeResult replay = runEpisode(shrink.program, options);
  EXPECT_FALSE(replay.ok);
  EXPECT_EQ(replay.failureClass, shrink.failure.failureClass);
  EXPECT_EQ(replay.digest, shrink.failure.digest);

  // ...and the exported .wsn scenario parses back (comments included).
  ASSERT_FALSE(shrink.scenarioText.empty());
  const auto events = parseScenario(shrink.scenarioText);
  EXPECT_EQ(events.size(), shrink.failure.executed.size());
}

TEST(ShrinkTest, ShrinkingIsDeterministic) {
  EpisodeOptions options;
  options.injectCffSlotBug = true;

  EpisodeResult original;
  const FuzzProgram failing = findInjectedFailure(options, &original);
  ASSERT_FALSE(failing.ops.empty());

  const ShrinkResult a = shrinkProgram(failing, options);
  const ShrinkResult b = shrinkProgram(failing, options);
  EXPECT_EQ(a.program.ops.size(), b.program.ops.size());
  EXPECT_EQ(a.program.nodeCount, b.program.nodeCount);
  EXPECT_EQ(a.episodesRun, b.episodesRun);
  EXPECT_EQ(a.failure.digest, b.failure.digest);
  EXPECT_EQ(a.scenarioText, b.scenarioText);
}

// runFuzz wires the same machinery end to end: a campaign under
// injection reports failures and ships a shrunk reproduction.
TEST(ShrinkTest, CampaignUnderInjectionShipsShrunkRepro) {
  FuzzConfig config;
  config.episodes = 10;
  config.seed = 1;
  config.jobs = 2;
  config.episode.injectCffSlotBug = true;

  const FuzzReport report = runFuzz(config);
  ASSERT_GT(report.failed, 0u)
      << "injection campaign unexpectedly came back clean";
  ASSERT_FALSE(report.failures.empty());
  const FuzzFailure& first = report.failures.front();
  EXPECT_TRUE(first.shrunk);
  EXPECT_LE(first.shrink.program.ops.size(), 12u);
  EXPECT_FALSE(first.shrink.scenarioText.empty());
}

}  // namespace
}  // namespace dsn::testkit
