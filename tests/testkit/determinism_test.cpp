// Cross-thread determinism of the fuzz campaign: the whole point of
// deterministic sharding is that --jobs only changes wall-clock, never
// the outcome.
#include <gtest/gtest.h>

#include <sstream>

#include "testkit/fuzz.hpp"
#include "testkit/seeds.hpp"

namespace dsn::testkit {
namespace {

FuzzConfig smallCampaign(int jobs) {
  FuzzConfig config;
  config.episodes = 12;
  config.seed = 42;
  config.jobs = jobs;
  config.shrinkFailures = false;
  return config;
}

TEST(DeterminismTest, CampaignDigestIndependentOfJobs) {
  const FuzzReport serial = runFuzz(smallCampaign(1));
  const FuzzReport threaded = runFuzz(smallCampaign(3));

  EXPECT_EQ(serial.digest, threaded.digest);
  EXPECT_EQ(serial.failed, threaded.failed);
  EXPECT_EQ(serial.opsExecuted, threaded.opsExecuted);
  EXPECT_EQ(serial.opsSkipped, threaded.opsSkipped);
  EXPECT_EQ(serial.simRuns, threaded.simRuns);
  EXPECT_EQ(serial.failures.size(), threaded.failures.size());
}

TEST(DeterminismTest, JsonExportByteIdenticalAcrossJobs) {
  // The document carries no wall-clock or host fields, so two campaigns
  // that differ only in worker count export byte-identical JSON (up to
  // the declared jobs value — held fixed here on purpose).
  const FuzzConfig config = smallCampaign(1);
  const FuzzReport serial = runFuzz(config);
  const FuzzReport threaded = runFuzz(smallCampaign(3));

  std::ostringstream a, b;
  writeFuzzJson(a, config, serial);
  writeFuzzJson(b, config, threaded);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"schema\":\"dsnet-fuzz-v1\""), std::string::npos);
}

TEST(DeterminismTest, ReplayEpisodeMatchesCampaignEpisode) {
  const FuzzConfig config = smallCampaign(1);
  for (std::uint64_t i = 0; i < 4; ++i) {
    const std::uint64_t seed = episodeSeed(config.seed, i);
    const EpisodeResult once =
        replayEpisode(seed, config.knobs, config.episode);
    const EpisodeResult again =
        replayEpisode(seed, config.knobs, config.episode);
    EXPECT_EQ(once.digest, again.digest) << "episode " << i;
    EXPECT_EQ(once.ok, again.ok) << "episode " << i;
    EXPECT_EQ(once.opsExecuted, again.opsExecuted) << "episode " << i;
    EXPECT_EQ(once.executed.size(), again.executed.size()) << "episode " << i;
  }
}

TEST(DeterminismTest, PinnedCampaignDigest) {
  // Cross-version pin: this exact campaign's digest is a behavioral
  // checksum over 617 simulator runs (every protocol family including
  // the six arena rivals, randomized dynamic topologies, failure
  // injection). Any change to RNG draw
  // order, round scheduling, delivery resolution, or trace emission
  // moves it. If a change is *intentionally* behavior-altering, rerun
  // the campaign and update the constant in the same commit; otherwise a
  // mismatch here means a refactor broke bit-identity.
  FuzzConfig config;
  config.episodes = 30;
  config.seed = 20260806;
  config.jobs = 2;
  config.shrinkFailures = false;
  const FuzzReport report = runFuzz(config);
  EXPECT_EQ(report.digest, 0xC4F1A8C3DEFBE36EULL);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.opsExecuted, 544u);
  EXPECT_EQ(report.simRuns, 617u);
}

TEST(DeterminismTest, PinnedCampaignDigestUnderShardedScheduler) {
  // The same pinned campaign, with every broadcast leg routed through
  // the sharded round engine (4 workers, serial fallback disabled, so
  // the parallel tile path really runs). The digest must equal the
  // serial engines' pin above: sharding is bit-exact by construction
  // (DESIGN.md §14), and this is the whole-campaign proof.
  FuzzConfig config;
  config.episodes = 30;
  config.seed = 20260806;
  config.jobs = 2;
  config.shrinkFailures = false;
  config.episode.threads = 4;
  config.episode.shardSerialThreshold = 0;
  const FuzzReport report = runFuzz(config);
  EXPECT_EQ(report.digest, 0xC4F1A8C3DEFBE36EULL);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.opsExecuted, 544u);
  EXPECT_EQ(report.simRuns, 617u);
}

TEST(DeterminismTest, EpisodeDigestsActuallyDiffer) {
  // A digest that never changes would make every determinism check above
  // vacuous; distinct episodes must hash to distinct values.
  const FuzzConfig config = smallCampaign(1);
  const EpisodeResult a =
      replayEpisode(episodeSeed(config.seed, 0), config.knobs);
  const EpisodeResult b =
      replayEpisode(episodeSeed(config.seed, 1), config.knobs);
  EXPECT_NE(a.digest, b.digest);
}

}  // namespace
}  // namespace dsn::testkit
