#include "radio/energy.hpp"

#include <gtest/gtest.h>

namespace dsn {
namespace {

TEST(EnergyMeterTest, CountsPerNode) {
  EnergyMeter m(3);
  m.recordListen(0);
  m.recordListen(0);
  m.recordTransmit(0);
  m.recordReceive(0);
  m.recordTransmit(2);

  EXPECT_EQ(m.node(0).listenRounds, 2u);
  EXPECT_EQ(m.node(0).transmitRounds, 1u);
  EXPECT_EQ(m.node(0).framesReceived, 1u);
  EXPECT_EQ(m.node(0).awakeRounds(), 3u);
  EXPECT_EQ(m.node(1).awakeRounds(), 0u);
  EXPECT_EQ(m.node(2).awakeRounds(), 1u);
}

TEST(EnergyMeterTest, Aggregates) {
  EnergyMeter m(4);
  for (int i = 0; i < 5; ++i) m.recordListen(1);
  m.recordTransmit(2);
  EXPECT_EQ(m.maxAwakeRounds(), 5u);
  EXPECT_DOUBLE_EQ(m.meanAwakeRounds(), 6.0 / 4.0);
  EXPECT_EQ(m.totalTransmissions(), 1u);
}

TEST(EnergyMeterTest, LinearEnergyModel) {
  EnergyMeter m(2);
  m.recordTransmit(0);   // 1.5
  m.recordListen(0);     // 1.0
  const EnergyModel model;  // tx 1.5, listen 1.0, sleep 0
  // Node 0: 1.5 + 1.0; node 1 sleeps 10 rounds at cost 0.
  EXPECT_DOUBLE_EQ(m.totalEnergy(model, 10), 2.5);

  EnergyModel withSleep;
  withSleep.sleepCost = 0.1;
  // Node 0: 2.5 + 8 sleeping rounds * 0.1; node 1: 10 * 0.1.
  EXPECT_DOUBLE_EQ(m.totalEnergy(withSleep, 10), 2.5 + 0.8 + 1.0);
}

TEST(EnergyMeterTest, OutOfRangeThrows) {
  EnergyMeter m(1);
  EXPECT_THROW(m.recordListen(5), std::out_of_range);
}

}  // namespace
}  // namespace dsn
