#include "radio/failure.hpp"

#include <gtest/gtest.h>

namespace dsn {
namespace {

TEST(FailureModelTest, NoFailuresByDefault) {
  FailureModel f;
  EXPECT_FALSE(f.isDead(0, 0));
  EXPECT_FALSE(f.isDead(42, 1000000));
  EXPECT_FALSE(f.hasScheduledDeaths());
  EXPECT_DOUBLE_EQ(f.dropProbability(), 0.0);
}

TEST(FailureModelTest, KillAtBoundary) {
  FailureModel f;
  f.killAt(3, 10);
  EXPECT_FALSE(f.isDead(3, 9));
  EXPECT_TRUE(f.isDead(3, 10));
  EXPECT_TRUE(f.isDead(3, 11));
  EXPECT_FALSE(f.isDead(4, 10));
  EXPECT_TRUE(f.hasScheduledDeaths());
}

TEST(FailureModelTest, EarlierKillWins) {
  FailureModel f;
  f.killAt(1, 10);
  f.killAt(1, 5);
  EXPECT_TRUE(f.isDead(1, 5));
  f.killAt(1, 20);  // later schedule cannot resurrect
  EXPECT_TRUE(f.isDead(1, 5));
}

TEST(FailureModelTest, NegativeDeathRoundRejected) {
  FailureModel f;
  EXPECT_THROW(f.killAt(0, -1), PreconditionError);
}

TEST(FailureModelTest, DropProbabilityValidation) {
  FailureModel f;
  EXPECT_THROW(f.setDropProbability(-0.1), PreconditionError);
  EXPECT_THROW(f.setDropProbability(1.1), PreconditionError);
  f.setDropProbability(0.5);
  EXPECT_DOUBLE_EQ(f.dropProbability(), 0.5);
}

TEST(FailureModelTest, DropFrequencyMatchesProbability) {
  FailureModel f(1234);
  f.setDropProbability(0.25);
  int drops = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i)
    if (f.dropsTransmission()) ++drops;
  EXPECT_NEAR(static_cast<double>(drops) / trials, 0.25, 0.02);
}

TEST(FailureModelTest, DeterministicGivenSeed) {
  FailureModel a(7), b(7);
  a.setDropProbability(0.5);
  b.setDropProbability(0.5);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(a.dropsTransmission(), b.dropsTransmission());
}

}  // namespace
}  // namespace dsn
