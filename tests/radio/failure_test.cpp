#include "radio/failure.hpp"

#include <gtest/gtest.h>

namespace dsn {
namespace {

TEST(FailureModelTest, NoFailuresByDefault) {
  FailureModel f;
  EXPECT_FALSE(f.isDead(0, 0));
  EXPECT_FALSE(f.isDead(42, 1000000));
  EXPECT_FALSE(f.hasScheduledDeaths());
  EXPECT_DOUBLE_EQ(f.dropProbability(), 0.0);
}

TEST(FailureModelTest, KillAtBoundary) {
  FailureModel f;
  f.killAt(3, 10);
  EXPECT_FALSE(f.isDead(3, 9));
  EXPECT_TRUE(f.isDead(3, 10));
  EXPECT_TRUE(f.isDead(3, 11));
  EXPECT_FALSE(f.isDead(4, 10));
  EXPECT_TRUE(f.hasScheduledDeaths());
}

TEST(FailureModelTest, EarlierKillWins) {
  FailureModel f;
  f.killAt(1, 10);
  f.killAt(1, 5);
  EXPECT_TRUE(f.isDead(1, 5));
  f.killAt(1, 20);  // later schedule cannot resurrect
  EXPECT_TRUE(f.isDead(1, 5));
}

TEST(FailureModelTest, NegativeDeathRoundRejected) {
  FailureModel f;
  EXPECT_THROW(f.killAt(0, -1), PreconditionError);
}

TEST(FailureModelTest, DropProbabilityValidation) {
  FailureModel f;
  EXPECT_THROW(f.setDropProbability(-0.1), PreconditionError);
  EXPECT_THROW(f.setDropProbability(1.1), PreconditionError);
  f.setDropProbability(0.5);
  EXPECT_DOUBLE_EQ(f.dropProbability(), 0.5);
}

TEST(FailureModelTest, DropFrequencyMatchesProbability) {
  FailureModel f(1234);
  f.setDropProbability(0.25);
  int drops = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i)
    if (f.dropsTransmission()) ++drops;
  EXPECT_NEAR(static_cast<double>(drops) / trials, 0.25, 0.02);
}

TEST(FailureModelTest, DeterministicGivenSeed) {
  FailureModel a(7), b(7);
  a.setDropProbability(0.5);
  b.setDropProbability(0.5);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(a.dropsTransmission(), b.dropsTransmission());
}

TEST(FailureModelTest, ZeroProbabilityNeverDrops) {
  FailureModel f(99);
  f.setDropProbability(0.0);
  EXPECT_FALSE(f.hasTransientLoss());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(f.dropsTransmission());
}

TEST(FailureModelTest, CertainProbabilityAlwaysDrops) {
  FailureModel f(99);
  f.setDropProbability(1.0);
  EXPECT_TRUE(f.hasTransientLoss());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(f.dropsTransmission());
}

TEST(FailureModelTest, CrashAtMarksUncooperativeDeath) {
  FailureModel f;
  f.killAt(1, 5);
  f.crashAt(2, 7);
  EXPECT_FALSE(f.isCrash(1));
  EXPECT_TRUE(f.isCrash(2));
  EXPECT_TRUE(f.isDead(2, 7));
  EXPECT_FALSE(f.isDead(2, 6));
  // Earliest-round rule holds across flavours, and a later crashAt still
  // flips the crash flag.
  f.crashAt(1, 9);
  EXPECT_TRUE(f.isDead(1, 5));
  EXPECT_TRUE(f.isCrash(1));
}

TEST(FailureModelTest, BurstParamsValidated) {
  FailureModel f;
  BurstLossParams p;
  p.pEnterBurst = -0.1;
  EXPECT_THROW(f.setBurstModel(p), PreconditionError);
  p.pEnterBurst = 0.5;
  p.pExitBurst = 1.5;
  EXPECT_THROW(f.setBurstModel(p), PreconditionError);
  p.pExitBurst = 0.5;
  p.dropBurst = 2.0;
  EXPECT_THROW(f.setBurstModel(p), PreconditionError);
}

TEST(FailureModelTest, BurstChainFollowsTransitions) {
  // pEnter = 1: the chain enters the burst state on the very first
  // attempt (state advances before the drop coin), so with dropBurst = 1
  // that attempt already drops.
  FailureModel f(3);
  BurstLossParams p;
  p.pEnterBurst = 1.0;
  p.pExitBurst = 1.0;
  p.dropGood = 0.0;
  p.dropBurst = 1.0;
  f.setBurstModel(p);
  EXPECT_TRUE(f.hasTransientLoss());
  EXPECT_FALSE(f.inBurst());
  EXPECT_TRUE(f.dropsTransmission());
  EXPECT_TRUE(f.inBurst());
}

TEST(FailureModelTest, BurstAlternatesUnderCertainTransitions) {
  // pEnter = pExit = 1 flips state every attempt; with dropBurst = 1 and
  // dropGood = 0 the drop sequence alternates deterministically.
  FailureModel f(3);
  BurstLossParams p;
  p.pEnterBurst = 1.0;
  p.pExitBurst = 1.0;
  p.dropGood = 0.0;
  p.dropBurst = 1.0;
  f.setBurstModel(p);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(f.dropsTransmission());   // good -> burst
    EXPECT_FALSE(f.dropsTransmission());  // burst -> good
  }
}

TEST(FailureModelTest, BurstDeterministicGivenSeed) {
  BurstLossParams p;
  p.pEnterBurst = 0.1;
  p.pExitBurst = 0.4;
  p.dropGood = 0.05;
  p.dropBurst = 0.9;
  FailureModel a(77), b(77);
  a.setBurstModel(p);
  b.setBurstModel(p);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.dropsTransmission(), b.dropsTransmission());
    EXPECT_EQ(a.inBurst(), b.inBurst());
  }
}

TEST(FailureModelTest, JamZoneGeometryAndWindow) {
  JamZone z;
  z.center = {100.0, 100.0};
  z.radius = 50.0;
  z.fromRound = 5;
  z.toRound = 10;
  EXPECT_TRUE(z.covers({100.0, 149.9}));
  EXPECT_TRUE(z.covers({100.0, 150.0}));  // boundary is inside
  EXPECT_FALSE(z.covers({100.0, 150.1}));
  EXPECT_FALSE(z.activeAt(4));
  EXPECT_TRUE(z.activeAt(5));
  EXPECT_TRUE(z.activeAt(9));
  EXPECT_FALSE(z.activeAt(10));  // toRound is exclusive
}

TEST(FailureModelTest, JammingNeedsPositions) {
  FailureModel f;
  JamZone z;
  z.center = {0.0, 0.0};
  z.radius = 10.0;
  f.addJamZone(z);
  // No positions yet: nothing is jammed.
  EXPECT_FALSE(f.isJammed(0, 0));
  f.setPositions({{0.0, 0.0}, {100.0, 0.0}});
  EXPECT_TRUE(f.isJammed(0, 0));
  EXPECT_FALSE(f.isJammed(1, 0));
  // Ids beyond the position vector are unjammable.
  EXPECT_FALSE(f.isJammed(7, 0));
}

TEST(FailureModelTest, JamWindowRespected) {
  FailureModel f;
  JamZone z;
  z.center = {0.0, 0.0};
  z.radius = 10.0;
  z.fromRound = 3;
  z.toRound = 6;
  f.addJamZone(z);
  f.setPositions({{1.0, 1.0}});
  EXPECT_FALSE(f.isJammed(0, 2));
  EXPECT_TRUE(f.isJammed(0, 3));
  EXPECT_TRUE(f.isJammed(0, 5));
  EXPECT_FALSE(f.isJammed(0, 6));
}

}  // namespace
}  // namespace dsn
