// Differential oracle for the active-set scheduler: every protocol
// family, with and without failure injection, must produce a run that is
// bit-identical to the full-scan reference — same rounds, same event
// trace, same per-node delivery rounds and energy. This is the contract
// that lets the perf work (DESIGN.md §12) change the simulator's cost
// model without changing its semantics.
#include <gtest/gtest.h>

#include "broadcast/flooding_baseline.hpp"
#include "broadcast/reliable.hpp"
#include "broadcast/runner.hpp"
#include "core/sensor_network.hpp"

namespace dsn {
namespace {

ProtocolOptions withScheduling(ProtocolOptions opts, SimScheduling s) {
  opts.scheduling = s;
  return opts;
}

void expectSameTrace(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.events().size(), b.events().size());
  ASSERT_EQ(a.droppedEvents(), b.droppedEvents());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    const TraceEvent& x = a.events()[i];
    const TraceEvent& y = b.events()[i];
    EXPECT_EQ(x.type, y.type) << "event " << i;
    EXPECT_EQ(x.round, y.round) << "event " << i;
    EXPECT_EQ(x.node, y.node) << "event " << i;
    EXPECT_EQ(x.peer, y.peer) << "event " << i;
    EXPECT_EQ(x.channel, y.channel) << "event " << i;
    EXPECT_EQ(x.msgKind, y.msgKind) << "event " << i;
  }
}

void expectSameRun(const BroadcastRun& a, const BroadcastRun& b) {
  EXPECT_EQ(a.sim.rounds, b.sim.rounds);
  EXPECT_EQ(a.sim.completed, b.sim.completed);
  EXPECT_EQ(a.sim.totalTransmissions, b.sim.totalTransmissions);
  EXPECT_EQ(a.sim.totalDeliveries, b.sim.totalDeliveries);
  EXPECT_EQ(a.sim.totalCollisions, b.sim.totalCollisions);
  EXPECT_EQ(a.sim.droppedTransmissions, b.sim.droppedTransmissions);
  EXPECT_EQ(a.sim.jammedLosses, b.sim.jammedLosses);
  EXPECT_EQ(a.intended, b.intended);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.lastDeliveryRound, b.lastDeliveryRound);
  EXPECT_EQ(a.maxAwakeRounds, b.maxAwakeRounds);
  EXPECT_DOUBLE_EQ(a.meanAwakeRounds, b.meanAwakeRounds);
  EXPECT_EQ(a.deliveryRound, b.deliveryRound);
  EXPECT_EQ(a.listenRounds, b.listenRounds);
  EXPECT_EQ(a.transmitRounds, b.transmitRounds);
  expectSameTrace(a.trace, b.trace);
}

NetworkConfig paperNetwork(std::size_t n, std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.nodeCount = n;
  cfg.seed = seed;
  return cfg;
}

TEST(SchedulingDifferentialTest, CleanBroadcastsAllSchemes) {
  const SensorNetwork net(paperNetwork(140, 0xD1FF01));
  ProtocolOptions opts;
  opts.traceCapacity = 1 << 16;
  for (const BroadcastScheme scheme :
       {BroadcastScheme::kCff, BroadcastScheme::kImprovedCff,
        BroadcastScheme::kDfo}) {
    const NodeId source = net.clusterNet().root();
    const auto active = net.broadcast(
        scheme, source, 7,
        withScheduling(opts, SimScheduling::kActiveSet));
    const auto full = net.broadcast(
        scheme, source, 7, withScheduling(opts, SimScheduling::kFullScan));
    SCOPED_TRACE(toString(scheme));
    expectSameRun(active, full);
  }
}

TEST(SchedulingDifferentialTest, MultiChannelCff) {
  const SensorNetwork net(paperNetwork(160, 0xD1FF02));
  ProtocolOptions opts;
  opts.channels = 3;
  opts.traceCapacity = 1 << 16;
  const auto active =
      net.broadcast(BroadcastScheme::kCff, net.clusterNet().root(), 9,
                    withScheduling(opts, SimScheduling::kActiveSet));
  const auto full =
      net.broadcast(BroadcastScheme::kCff, net.clusterNet().root(), 9,
                    withScheduling(opts, SimScheduling::kFullScan));
  expectSameRun(active, full);
}

TEST(SchedulingDifferentialTest, DropsAndScheduledDeaths) {
  const SensorNetwork net(paperNetwork(150, 0xD1FF03));
  ProtocolOptions opts;
  opts.dropProbability = 0.15;
  opts.deaths = {{5, 2}, {17, 0}, {33, 6}, {60, 10}};
  opts.traceCapacity = 1 << 16;
  for (const BroadcastScheme scheme :
       {BroadcastScheme::kCff, BroadcastScheme::kImprovedCff}) {
    const auto active = net.broadcast(
        scheme, net.clusterNet().root(), 11,
        withScheduling(opts, SimScheduling::kActiveSet));
    const auto full = net.broadcast(
        scheme, net.clusterNet().root(), 11,
        withScheduling(opts, SimScheduling::kFullScan));
    SCOPED_TRACE(toString(scheme));
    expectSameRun(active, full);
  }
}

TEST(SchedulingDifferentialTest, BurstLossAndJamZones) {
  const SensorNetwork net(paperNetwork(130, 0xD1FF04));
  ProtocolOptions opts;
  opts.burst.pEnterBurst = 0.1;
  opts.burst.pExitBurst = 0.3;
  opts.burst.dropBurst = 0.9;
  opts.jamZones.push_back(
      {Point2D{300.0, 300.0}, 180.0, /*from=*/2, /*until=*/25});
  opts.traceCapacity = 1 << 16;
  const auto active =
      net.broadcast(BroadcastScheme::kImprovedCff, net.clusterNet().root(), 13,
                    withScheduling(opts, SimScheduling::kActiveSet));
  const auto full =
      net.broadcast(BroadcastScheme::kImprovedCff, net.clusterNet().root(), 13,
                    withScheduling(opts, SimScheduling::kFullScan));
  expectSameRun(active, full);
}

TEST(SchedulingDifferentialTest, FloodingBaselineWithDrops) {
  const SensorNetwork net(paperNetwork(120, 0xD1FF05));
  FloodingConfig fc;
  ProtocolOptions opts;
  opts.dropProbability = 0.1;
  opts.traceCapacity = 1 << 16;
  const auto active = runFloodingBroadcast(
      net.graph(), net.clusterNet().root(), 17, fc,
      withScheduling(opts, SimScheduling::kActiveSet));
  const auto full = runFloodingBroadcast(
      net.graph(), net.clusterNet().root(), 17, fc,
      withScheduling(opts, SimScheduling::kFullScan));
  expectSameRun(active, full);
}

TEST(SchedulingDifferentialTest, ReliableBroadcastRepairRounds) {
  const SensorNetwork net(paperNetwork(140, 0xD1FF06));
  ReliableOptions opts;
  opts.base.dropProbability = 0.25;  // force the NACK/repair machinery
  const auto run = [&](SimScheduling s) {
    ReliableOptions o = opts;
    o.base.scheduling = s;
    return net.reliableBroadcast(BroadcastScheme::kCff, net.clusterNet().root(), 19, o);
  };
  const auto active = run(SimScheduling::kActiveSet);
  const auto full = run(SimScheduling::kFullScan);
  EXPECT_EQ(active.intended, full.intended);
  EXPECT_EQ(active.delivered, full.delivered);
  EXPECT_EQ(active.repairRoundsUsed, full.repairRoundsUsed);
  EXPECT_EQ(active.nacksSent, full.nacksSent);
  expectSameRun(active.wave, full.wave);
}

}  // namespace
}  // namespace dsn
