// Steady-state allocation guard for the transmitter-driven resolver.
//
// The active-set simulator promises zero heap allocations per round once
// its scratch buffers are warm (DESIGN.md §12); this binary overrides the
// global allocator with a counting shim and fails if any resolveRound
// call after warm-up allocates. A second armed pass reruns 1000 rounds
// with the flight recorder enabled on a deliberately undersized ring —
// record() must stay allocation-free even while wrapping (DESIGN.md §13).
// A third pass covers the sharded round engine (DESIGN.md §14): its
// per-tile buffers reach a high-water capacity and are then reused, so a
// 4x longer run must cost exactly as many allocations as a short one —
// the per-round marginal cost is zero. A plain executable (not gtest) so
// the override sees only our own code paths.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "graph/deploy.hpp"
#include "graph/unit_disk.hpp"
#include "obs/flight.hpp"
#include "radio/channel.hpp"
#include "radio/simulator.hpp"
#include "util/rng.hpp"

namespace {

// The sharded pass runs worker threads, so the counter is atomic.
std::atomic<std::size_t> g_allocs{0};
bool g_armed = false;

}  // namespace

// GCC pairs the inlined `new` inside make_unique with the std::free in
// our replacement delete and flags a mismatch; with BOTH operators
// replaced malloc/free is the correct pairing, so the warning is a
// false positive here.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  if (g_armed) g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dsn {
namespace {

/// Minimal SoA protocol for the sharded pass: every node beacons once
/// per 16-round period (staggered by id) and listens otherwise, so each
/// round carries the same mix of transmissions, deliveries, and
/// collisions forever. Never done — the run always exhausts maxRounds,
/// which lets two runs differ only in round count.
class BeaconSwarm final : public SwarmProtocol {
 public:
  BeaconSwarm(std::size_t nodes, Channel channels)
      : channels_(channels), heard_(nodes, 0) {}

  Action onRound(NodeId v, Round r) override {
    if ((static_cast<Round>(v) + r) % 16 == 0) {
      Message m;
      m.sender = v;
      return Action::transmit(m, static_cast<Channel>(v % channels_));
    }
    return Action::listen(v % 2 == 0 ? kAllChannels
                                     : static_cast<Channel>(v % channels_));
  }
  // Distinct nodes only, so the plain per-node counters are race-free
  // even when tiles run on separate workers.
  void onReceive(NodeId v, const Message&, Round, Channel) override {
    ++heard_[v];
  }
  bool isDone(NodeId) const override { return false; }

 private:
  Channel channels_;
  std::vector<std::uint32_t> heard_;
};

bool sameOutcome(const ChannelOutcome& a, const ChannelOutcome& b) {
  if (a.deliveries.size() != b.deliveries.size()) return false;
  if (a.collisionSites.size() != b.collisionSites.size()) return false;
  if (a.transmissions != b.transmissions) return false;
  for (std::size_t i = 0; i < a.deliveries.size(); ++i) {
    if (a.deliveries[i].receiver != b.deliveries[i].receiver ||
        a.deliveries[i].transmitter != b.deliveries[i].transmitter ||
        a.deliveries[i].channel != b.deliveries[i].channel)
      return false;
  }
  for (std::size_t i = 0; i < a.collisionSites.size(); ++i) {
    if (a.collisionSites[i].listener != b.collisionSites[i].listener ||
        a.collisionSites[i].channel != b.collisionSites[i].channel)
      return false;
  }
  return true;
}

int run() {
  constexpr Channel kChannels = 2;
  Rng rng(0xA110C);
  const auto points = deployIncrementalAttach(
      {Field::squareUnits(10), 50.0, 400}, rng);
  const Graph g = buildUnitDiskGraph(points, 50.0);

  // A dense mid-flood round: every 10th node transmits (alternating
  // channels), everyone else listens — half wide-band, half tuned.
  std::vector<Action> actions(g.size(), Action::sleep());
  std::vector<NodeId> transmitters;
  for (NodeId v = 0; v < g.size(); ++v) {
    if (v % 10 == 0) {
      Message m;
      m.sender = v;
      actions[v] = Action::transmit(m, static_cast<Channel>(v / 10 % 2));
      transmitters.push_back(v);
    } else {
      actions[v] = Action::listen(
          v % 2 == 0 ? kAllChannels : static_cast<Channel>(v % kChannels));
    }
  }

  const CsrView& csr = g.csrView();
  ResolveScratch scratch;
  scratch.prepare(g.size(), kChannels);

  // The transmitter-driven resolver must agree with the full scan.
  const ChannelOutcome fullScan = resolveRound(g, actions, kChannels);
  const ChannelOutcome& warm =
      resolveRoundActive(csr, actions, transmitters, kChannels, scratch);
  if (!sameOutcome(fullScan, warm)) {
    std::fprintf(stderr,
                 "FAIL: transmitter-driven outcome differs from full scan\n");
    return 1;
  }
  if (warm.deliveries.empty() || warm.collisionSites.empty()) {
    std::fprintf(stderr, "FAIL: scenario exercises no deliveries or "
                         "collisions — not a meaningful guard\n");
    return 1;
  }

  // Steady state: with warm scratch and outcome capacity, a round costs
  // zero allocations.
  g_armed = true;
  for (int i = 0; i < 1000; ++i)
    resolveRoundActive(csr, actions, transmitters, kChannels, scratch);
  g_armed = false;

  if (g_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu heap allocations across 1000 steady-state "
                 "rounds (expected 0)\n",
                 g_allocs.load(std::memory_order_relaxed));
    return 1;
  }

  // Same guarantee with the flight recorder enabled: record() must stay
  // an indexed store even while the ring wraps. The ring is sized well
  // below 1000 rounds' worth of events so the overflow path is the one
  // being measured.
  obs::FlightRecorder recorder;
  obs::FrConfig traceConfig;
  traceConfig.capacity = 4096;
  recorder.configure(traceConfig);
  {
    obs::ScopedRecorderSink sink(recorder);
    g_armed = true;
    for (int round = 0; round < 1000; ++round) {
      const ChannelOutcome& out =
          resolveRoundActive(csr, actions, transmitters, kChannels, scratch);
      // Mirror the simulator's per-round instrumentation.
      obs::FlightRecorder* frRadio = obs::recorderFor<obs::kFrCatRadio>();
      obs::FlightRecorder* frColl = obs::recorderFor<obs::kFrCatCollision>();
      if (frRadio) {
        for (const NodeId tx : transmitters) {
          obs::FrEvent e;
          e.round = static_cast<std::uint32_t>(round);
          e.node = tx;
          e.type = static_cast<std::uint8_t>(obs::FrType::kTransmit);
          frRadio->record(e);
        }
        for (const Delivery& d : out.deliveries) {
          obs::FrEvent e;
          e.round = static_cast<std::uint32_t>(round);
          e.node = d.receiver;
          e.data = d.transmitter;
          e.channel = static_cast<std::uint8_t>(d.channel);
          e.type = static_cast<std::uint8_t>(obs::FrType::kDelivery);
          frRadio->record(e);
        }
      }
      if (frColl) {
        for (const CollisionSite& c : out.collisionSites) {
          obs::FrEvent e;
          e.round = static_cast<std::uint32_t>(round);
          e.node = c.listener;
          e.channel = static_cast<std::uint8_t>(c.channel);
          e.type = static_cast<std::uint8_t>(obs::FrType::kCollision);
          frColl->record(e);
        }
      }
    }
    g_armed = false;
  }

  if (g_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu heap allocations across 1000 recorded rounds "
                 "(expected 0)\n",
                 g_allocs.load(std::memory_order_relaxed));
    return 1;
  }
  if (recorder.droppedEvents() == 0) {
    std::fprintf(stderr,
                 "FAIL: ring never wrapped (%zu stored) — the recorded "
                 "guard is not exercising overflow\n",
                 recorder.storedEvents());
    return 1;
  }
  // Sharded engine: per-tile buffers reach a high-water capacity during
  // the first beacon period and are then reused, so extending a run by
  // 300 rounds must not add a single allocation. Two fresh engines with
  // identical setup, differing only in maxRounds, are compared on total
  // allocation count — any per-round marginal cost shows up as growth.
  auto shardedRun = [&](Round maxRounds, std::size_t* allocsOut) {
    SimConfig cfg;
    cfg.channelCount = kChannels;
    cfg.maxRounds = maxRounds;
    cfg.scheduling = SimScheduling::kSharded;
    cfg.threads = 2;
    cfg.shardSerialThreshold = 0;  // force the parallel tile path
    const std::size_t before = g_allocs.load(std::memory_order_relaxed);
    g_armed = true;
    SimResult res;
    {
      RadioSimulator sim(g, cfg);
      std::vector<NodeId> members(g.size());
      for (NodeId v = 0; v < g.size(); ++v) members[v] = v;
      sim.setSwarm(std::make_unique<BeaconSwarm>(g.size(), kChannels),
                   members);
      res = sim.run();
    }
    g_armed = false;
    *allocsOut = g_allocs.load(std::memory_order_relaxed) - before;
    return res;
  };

  std::size_t allocsShort = 0;
  std::size_t allocsLong = 0;
  const SimResult shortRun = shardedRun(100, &allocsShort);
  const SimResult longRun = shardedRun(400, &allocsLong);

  if (shortRun.totalDeliveries == 0 || shortRun.totalCollisions == 0) {
    std::fprintf(stderr, "FAIL: sharded scenario exercises no deliveries "
                         "or collisions — not a meaningful guard\n");
    return 1;
  }
  if (longRun.rounds != 400 || shortRun.rounds != 100 ||
      longRun.totalDeliveries <= shortRun.totalDeliveries) {
    std::fprintf(stderr, "FAIL: sharded runs did not exhaust their round "
                         "budgets (%llu / %llu rounds)\n",
                 static_cast<unsigned long long>(shortRun.rounds),
                 static_cast<unsigned long long>(longRun.rounds));
    return 1;
  }
  if (allocsLong > allocsShort) {
    std::fprintf(stderr,
                 "FAIL: sharded engine allocates per round in steady "
                 "state: 100 rounds cost %zu allocations, 400 rounds "
                 "cost %zu (expected no growth)\n",
                 allocsShort, allocsLong);
    return 1;
  }

  // And the numbers the sharded engine produced are the real ones.
  SimConfig refCfg;
  refCfg.channelCount = kChannels;
  refCfg.maxRounds = 400;
  refCfg.scheduling = SimScheduling::kActiveSet;
  RadioSimulator refSim(g, refCfg);
  std::vector<NodeId> everyone(g.size());
  for (NodeId v = 0; v < g.size(); ++v) everyone[v] = v;
  refSim.setSwarm(std::make_unique<BeaconSwarm>(g.size(), kChannels),
                  everyone);
  const SimResult refRun = refSim.run();
  if (refRun.totalTransmissions != longRun.totalTransmissions ||
      refRun.totalDeliveries != longRun.totalDeliveries ||
      refRun.totalCollisions != longRun.totalCollisions ||
      refRun.rounds != longRun.rounds) {
    std::fprintf(stderr, "FAIL: sharded totals diverge from the "
                         "active-set reference\n");
    return 1;
  }

  std::printf("ok: 1000 steady-state rounds, 0 allocations, %zu "
              "deliveries + %zu collision sites per round; recorded "
              "rerun stored %zu events (%llu dropped) with 0 "
              "allocations; sharded 100->400 rounds added 0 of %zu "
              "setup allocations\n",
              warm.deliveries.size(), warm.collisionSites.size(),
              recorder.storedEvents(),
              static_cast<unsigned long long>(recorder.droppedEvents()),
              allocsShort);
  return 0;
}

}  // namespace
}  // namespace dsn

int main() { return dsn::run(); }
