// Steady-state allocation guard for the transmitter-driven resolver.
//
// The active-set simulator promises zero heap allocations per round once
// its scratch buffers are warm (DESIGN.md §12); this binary overrides the
// global allocator with a counting shim and fails if any resolveRound
// call after warm-up allocates. A plain executable (not gtest) so the
// override sees only our own code paths.
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "graph/deploy.hpp"
#include "graph/unit_disk.hpp"
#include "radio/channel.hpp"
#include "util/rng.hpp"

namespace {

std::size_t g_allocs = 0;  // single-threaded binary; no atomics needed
bool g_armed = false;

}  // namespace

void* operator new(std::size_t size) {
  if (g_armed) ++g_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dsn {
namespace {

bool sameOutcome(const ChannelOutcome& a, const ChannelOutcome& b) {
  if (a.deliveries.size() != b.deliveries.size()) return false;
  if (a.collisionSites.size() != b.collisionSites.size()) return false;
  if (a.transmissions != b.transmissions) return false;
  for (std::size_t i = 0; i < a.deliveries.size(); ++i) {
    if (a.deliveries[i].receiver != b.deliveries[i].receiver ||
        a.deliveries[i].transmitter != b.deliveries[i].transmitter ||
        a.deliveries[i].channel != b.deliveries[i].channel)
      return false;
  }
  for (std::size_t i = 0; i < a.collisionSites.size(); ++i) {
    if (a.collisionSites[i].listener != b.collisionSites[i].listener ||
        a.collisionSites[i].channel != b.collisionSites[i].channel)
      return false;
  }
  return true;
}

int run() {
  constexpr Channel kChannels = 2;
  Rng rng(0xA110C);
  const auto points = deployIncrementalAttach(
      {Field::squareUnits(10), 50.0, 400}, rng);
  const Graph g = buildUnitDiskGraph(points, 50.0);

  // A dense mid-flood round: every 10th node transmits (alternating
  // channels), everyone else listens — half wide-band, half tuned.
  std::vector<Action> actions(g.size(), Action::sleep());
  std::vector<NodeId> transmitters;
  for (NodeId v = 0; v < g.size(); ++v) {
    if (v % 10 == 0) {
      Message m;
      m.sender = v;
      actions[v] = Action::transmit(m, static_cast<Channel>(v / 10 % 2));
      transmitters.push_back(v);
    } else {
      actions[v] = Action::listen(
          v % 2 == 0 ? kAllChannels : static_cast<Channel>(v % kChannels));
    }
  }

  const CsrView& csr = g.csrView();
  ResolveScratch scratch;
  scratch.prepare(g.size(), kChannels);

  // The transmitter-driven resolver must agree with the full scan.
  const ChannelOutcome fullScan = resolveRound(g, actions, kChannels);
  const ChannelOutcome& warm =
      resolveRoundActive(csr, actions, transmitters, kChannels, scratch);
  if (!sameOutcome(fullScan, warm)) {
    std::fprintf(stderr,
                 "FAIL: transmitter-driven outcome differs from full scan\n");
    return 1;
  }
  if (warm.deliveries.empty() || warm.collisionSites.empty()) {
    std::fprintf(stderr, "FAIL: scenario exercises no deliveries or "
                         "collisions — not a meaningful guard\n");
    return 1;
  }

  // Steady state: with warm scratch and outcome capacity, a round costs
  // zero allocations.
  g_armed = true;
  for (int i = 0; i < 1000; ++i)
    resolveRoundActive(csr, actions, transmitters, kChannels, scratch);
  g_armed = false;

  if (g_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu heap allocations across 1000 steady-state "
                 "rounds (expected 0)\n",
                 g_allocs);
    return 1;
  }
  std::printf("ok: 1000 steady-state rounds, 0 allocations, %zu "
              "deliveries + %zu collision sites per round\n",
              warm.deliveries.size(), warm.collisionSites.size());
  return 0;
}

}  // namespace
}  // namespace dsn

int main() { return dsn::run(); }
