#include "radio/simulator.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace dsn {
namespace {

/// Transmits one frame at a fixed round, then is done.
class OneShotTransmitter : public NodeProtocol {
 public:
  OneShotTransmitter(NodeId self, Round when) : self_(self), when_(when) {}
  Action onRound(Round r) override {
    if (r == when_) {
      Message m;
      m.sender = self_;
      m.payload = 77;
      sent_ = true;
      return Action::transmit(m);
    }
    return Action::sleep();
  }
  void onReceive(const Message&, Round, Channel) override {}
  bool isDone() const override { return sent_; }

 private:
  NodeId self_;
  Round when_;
  bool sent_ = false;
};

/// Listens until it receives anything, then is done.
class ListenUntilReceive : public NodeProtocol {
 public:
  Action onRound(Round) override {
    return got_ ? Action::sleep() : Action::listen();
  }
  void onReceive(const Message& m, Round r, Channel) override {
    got_ = true;
    payload_ = m.payload;
    receivedAt_ = r;
  }
  bool isDone() const override { return got_; }

  bool got_ = false;
  std::uint64_t payload_ = 0;
  Round receivedAt_ = -1;
};

Graph pair() {
  Graph g(2);
  g.addEdge(0, 1);
  return g;
}

TEST(SimulatorTest, DeliversBetweenTwoNodes) {
  const Graph g = pair();
  RadioSimulator sim(g, SimConfig{});
  sim.setProtocol(0, std::make_unique<OneShotTransmitter>(0, 2));
  auto listener = std::make_unique<ListenUntilReceive>();
  auto* lp = listener.get();
  sim.setProtocol(1, std::move(listener));

  const SimResult r = sim.run();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(lp->got_);
  EXPECT_EQ(lp->payload_, 77u);
  EXPECT_EQ(lp->receivedAt_, 2);
  EXPECT_EQ(r.totalTransmissions, 1u);
  EXPECT_EQ(r.totalDeliveries, 1u);
  EXPECT_EQ(r.rounds, 3);  // rounds 0,1,2 executed; done detected at 3
}

TEST(SimulatorTest, EnergyAccounting) {
  const Graph g = pair();
  RadioSimulator sim(g, SimConfig{});
  sim.setProtocol(0, std::make_unique<OneShotTransmitter>(0, 2));
  sim.setProtocol(1, std::make_unique<ListenUntilReceive>());
  sim.run();
  EXPECT_EQ(sim.energy().node(0).transmitRounds, 1u);
  EXPECT_EQ(sim.energy().node(0).listenRounds, 0u);
  EXPECT_EQ(sim.energy().node(1).listenRounds, 3u);  // rounds 0..2
  EXPECT_EQ(sim.energy().node(1).framesReceived, 1u);
  EXPECT_EQ(sim.energy().node(1).awakeRounds(), 3u);
  EXPECT_EQ(sim.energy().maxAwakeRounds(), 3u);
}

TEST(SimulatorTest, NodesWithoutProtocolSleep) {
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  RadioSimulator sim(g, SimConfig{});
  sim.setProtocol(0, std::make_unique<OneShotTransmitter>(0, 0));
  // Nodes 1 and 2 have no protocol; run ends after 0 transmits.
  const SimResult r = sim.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.totalDeliveries, 0u);
}

TEST(SimulatorTest, MaxRoundsStopsHangingProtocol) {
  const Graph g = pair();
  SimConfig cfg;
  cfg.maxRounds = 10;
  RadioSimulator sim(g, cfg);
  sim.setProtocol(1, std::make_unique<ListenUntilReceive>());  // never gets
  const SimResult r = sim.run();
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.rounds, 10);
}

TEST(SimulatorTest, RunTwiceRejected) {
  const Graph g = pair();
  RadioSimulator sim(g, SimConfig{});
  sim.run();
  EXPECT_THROW(sim.run(), PreconditionError);
}

TEST(SimulatorTest, DeadNodeNeitherActsNorReceives) {
  const Graph g = pair();
  RadioSimulator sim(g, SimConfig{});
  sim.setProtocol(0, std::make_unique<OneShotTransmitter>(0, 1));
  auto listener = std::make_unique<ListenUntilReceive>();
  auto* lp = listener.get();
  sim.setProtocol(1, std::move(listener));
  sim.failures().killAt(1, 0);
  const SimResult r = sim.run();
  EXPECT_TRUE(r.completed);  // dead node doesn't block completion
  EXPECT_FALSE(lp->got_);
  EXPECT_EQ(sim.energy().node(1).listenRounds, 0u);
}

TEST(SimulatorTest, DeathMidRunStopsParticipation) {
  const Graph g = pair();
  RadioSimulator sim(g, SimConfig{});
  sim.setProtocol(0, std::make_unique<OneShotTransmitter>(0, 5));
  auto listener = std::make_unique<ListenUntilReceive>();
  auto* lp = listener.get();
  sim.setProtocol(1, std::move(listener));
  sim.failures().killAt(1, 3);  // dies before the round-5 transmission
  sim.run();
  EXPECT_FALSE(lp->got_);
  EXPECT_EQ(sim.energy().node(1).listenRounds, 3u);  // rounds 0..2
}

TEST(SimulatorTest, DroppedTransmissionCostsEnergyButNothingArrives) {
  const Graph g = pair();
  RadioSimulator sim(g, SimConfig{});
  sim.setProtocol(0, std::make_unique<OneShotTransmitter>(0, 0));
  auto listener = std::make_unique<ListenUntilReceive>();
  auto* lp = listener.get();
  sim.setProtocol(1, std::move(listener));
  sim.failures().setDropProbability(1.0);
  const SimResult r = sim.run();
  EXPECT_FALSE(lp->got_);
  EXPECT_EQ(r.droppedTransmissions, 1u);
  EXPECT_EQ(r.totalTransmissions, 0u);  // never went on air
  EXPECT_EQ(sim.energy().node(0).transmitRounds, 1u);  // energy spent
}

TEST(SimulatorTest, TraceRecordsEvents) {
  const Graph g = pair();
  SimConfig cfg;
  cfg.traceCapacity = 100;
  RadioSimulator sim(g, cfg);
  sim.setProtocol(0, std::make_unique<OneShotTransmitter>(0, 0));
  sim.setProtocol(1, std::make_unique<ListenUntilReceive>());
  sim.run();
  EXPECT_EQ(sim.trace().countOf(TraceEventType::kTransmit), 1u);
  EXPECT_EQ(sim.trace().countOf(TraceEventType::kReceive), 1u);
  EXPECT_EQ(sim.trace().countOf(TraceEventType::kCollision), 0u);
}

TEST(SimulatorTest, ProtocolAfterRunRejected) {
  const Graph g = pair();
  RadioSimulator sim(g, SimConfig{});
  sim.run();
  EXPECT_THROW(sim.setProtocol(0, std::make_unique<ListenUntilReceive>()),
               PreconditionError);
}

TEST(SimulatorTest, CollisionObservedInTrace) {
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(2, 1);
  SimConfig cfg;
  cfg.traceCapacity = 100;
  cfg.maxRounds = 20;  // listener starves; don't run the default budget
  RadioSimulator sim(g, cfg);
  sim.setProtocol(0, std::make_unique<OneShotTransmitter>(0, 0));
  sim.setProtocol(2, std::make_unique<OneShotTransmitter>(2, 0));
  auto listener = std::make_unique<ListenUntilReceive>();
  auto* lp = listener.get();
  sim.setProtocol(1, std::move(listener));
  SimResult r = sim.run();
  EXPECT_FALSE(r.completed);  // listener starves (hits maxRounds)...
  EXPECT_FALSE(lp->got_);
  EXPECT_EQ(sim.trace().countOf(TraceEventType::kCollision), 1u);
}

}  // namespace
}  // namespace dsn
