// Event trace recorder.
#include <gtest/gtest.h>

#include "radio/trace.hpp"

namespace dsn {
namespace {

TEST(TraceTest, DisabledByDefault) {
  Trace t;
  EXPECT_FALSE(t.enabled());
  t.record(TraceEvent{TraceEventType::kTransmit, 0, 1, kInvalidNode, 0,
                      MsgKind::kData});
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.droppedEvents(), 0u);
}

TEST(TraceTest, RecordsUpToCapacity) {
  Trace t(3);
  for (Round r = 0; r < 5; ++r)
    t.record(TraceEvent{TraceEventType::kReceive, r, 1, 2, 0,
                        MsgKind::kToken});
  EXPECT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.droppedEvents(), 2u);
  EXPECT_EQ(t.events()[2].round, 2);
}

TEST(TraceTest, CountOfFiltersByType) {
  Trace t(10);
  t.record(TraceEvent{TraceEventType::kTransmit, 0, 1, kInvalidNode, 0,
                      MsgKind::kData});
  t.record(TraceEvent{TraceEventType::kCollision, 1, 2, kInvalidNode, 0,
                      MsgKind::kData});
  t.record(TraceEvent{TraceEventType::kTransmit, 2, 3, kInvalidNode, 0,
                      MsgKind::kData});
  EXPECT_EQ(t.countOf(TraceEventType::kTransmit), 2u);
  EXPECT_EQ(t.countOf(TraceEventType::kCollision), 1u);
  EXPECT_EQ(t.countOf(TraceEventType::kNodeDeath), 0u);
}

TEST(TraceTest, DescribeMentionsFields) {
  const TraceEvent tx{TraceEventType::kTransmit, 7, 3, kInvalidNode, 1,
                      MsgKind::kData};
  const std::string s = Trace::describe(tx);
  EXPECT_NE(s.find("r7"), std::string::npos);
  EXPECT_NE(s.find("TX"), std::string::npos);
  EXPECT_NE(s.find("node=3"), std::string::npos);
  EXPECT_NE(s.find("ch=1"), std::string::npos);

  const TraceEvent rx{TraceEventType::kReceive, 2, 4, 9, 0,
                      MsgKind::kData};
  EXPECT_NE(Trace::describe(rx).find("from=9"), std::string::npos);

  const TraceEvent die{TraceEventType::kNodeDeath, 5, 6, kInvalidNode, 0,
                       MsgKind::kData};
  EXPECT_NE(Trace::describe(die).find("DIE"), std::string::npos);

  const TraceEvent drop{TraceEventType::kDroppedTransmit, 5, 6,
                        kInvalidNode, 0, MsgKind::kData};
  EXPECT_NE(Trace::describe(drop).find("DROP"), std::string::npos);

  const TraceEvent coll{TraceEventType::kCollision, 5, 6, kInvalidNode, 0,
                        MsgKind::kData};
  EXPECT_NE(Trace::describe(coll).find("COLL"), std::string::npos);
}

}  // namespace
}  // namespace dsn
