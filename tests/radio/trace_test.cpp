// Event trace recorder.
#include <gtest/gtest.h>

#include <sstream>

#include "radio/trace.hpp"

namespace dsn {
namespace {

TEST(TraceTest, DisabledByDefault) {
  Trace t;
  EXPECT_FALSE(t.enabled());
  t.record(TraceEvent{TraceEventType::kTransmit, 0, 1, kInvalidNode, 0,
                      MsgKind::kData});
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.droppedEvents(), 0u);
}

TEST(TraceTest, RecordsUpToCapacity) {
  Trace t(3);
  for (Round r = 0; r < 5; ++r)
    t.record(TraceEvent{TraceEventType::kReceive, r, 1, 2, 0,
                        MsgKind::kToken});
  EXPECT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.droppedEvents(), 2u);
  EXPECT_EQ(t.events()[2].round, 2);
}

TEST(TraceTest, CountOfFiltersByType) {
  Trace t(10);
  t.record(TraceEvent{TraceEventType::kTransmit, 0, 1, kInvalidNode, 0,
                      MsgKind::kData});
  t.record(TraceEvent{TraceEventType::kCollision, 1, 2, kInvalidNode, 0,
                      MsgKind::kData});
  t.record(TraceEvent{TraceEventType::kTransmit, 2, 3, kInvalidNode, 0,
                      MsgKind::kData});
  EXPECT_EQ(t.countOf(TraceEventType::kTransmit), 2u);
  EXPECT_EQ(t.countOf(TraceEventType::kCollision), 1u);
  EXPECT_EQ(t.countOf(TraceEventType::kNodeDeath), 0u);
}

TEST(TraceTest, DescribeMentionsFields) {
  const TraceEvent tx{TraceEventType::kTransmit, 7, 3, kInvalidNode, 1,
                      MsgKind::kData};
  const std::string s = Trace::describe(tx);
  EXPECT_NE(s.find("r7"), std::string::npos);
  EXPECT_NE(s.find("TX"), std::string::npos);
  EXPECT_NE(s.find("node=3"), std::string::npos);
  EXPECT_NE(s.find("ch=1"), std::string::npos);

  const TraceEvent rx{TraceEventType::kReceive, 2, 4, 9, 0,
                      MsgKind::kData};
  EXPECT_NE(Trace::describe(rx).find("from=9"), std::string::npos);

  const TraceEvent die{TraceEventType::kNodeDeath, 5, 6, kInvalidNode, 0,
                       MsgKind::kData};
  EXPECT_NE(Trace::describe(die).find("DIE"), std::string::npos);

  const TraceEvent drop{TraceEventType::kDroppedTransmit, 5, 6,
                        kInvalidNode, 0, MsgKind::kData};
  EXPECT_NE(Trace::describe(drop).find("DROP"), std::string::npos);

  const TraceEvent coll{TraceEventType::kCollision, 5, 6, kInvalidNode, 0,
                        MsgKind::kData};
  EXPECT_NE(Trace::describe(coll).find("COLL"), std::string::npos);
}

TEST(TraceTest, OverflowAccountingStaysConsistent) {
  // Regression: filling a bounded trace far past capacity must keep
  // stored-event counts, droppedEvents() and countOf() mutually
  // consistent — dropped events are counted but never typed.
  constexpr std::size_t kCapacity = 8;
  constexpr std::size_t kTotal = 100;
  Trace t(kCapacity);
  for (std::size_t i = 0; i < kTotal; ++i) {
    const auto type = i % 2 == 0 ? TraceEventType::kTransmit
                                 : TraceEventType::kReceive;
    t.record(TraceEvent{type, static_cast<Round>(i),
                        static_cast<NodeId>(i), kInvalidNode, 0,
                        MsgKind::kData});
  }
  EXPECT_EQ(t.events().size(), kCapacity);
  EXPECT_EQ(t.droppedEvents(), kTotal - kCapacity);
  // Only stored events are visible to countOf; the two types alternate,
  // so the stored prefix splits evenly.
  EXPECT_EQ(t.countOf(TraceEventType::kTransmit) +
                t.countOf(TraceEventType::kReceive),
            t.events().size());
  EXPECT_EQ(t.countOf(TraceEventType::kTransmit), kCapacity / 2);
  EXPECT_EQ(t.countOf(TraceEventType::kCollision), 0u);
  // Overflow never corrupts the stored prefix.
  for (std::size_t i = 0; i < kCapacity; ++i)
    EXPECT_EQ(t.events()[i].round, static_cast<Round>(i));
}

TEST(TraceTest, JsonlOneValidObjectPerLine) {
  Trace t(4);
  t.record(TraceEvent{TraceEventType::kTransmit, 0, 1, kInvalidNode, 0,
                      MsgKind::kData});
  t.record(TraceEvent{TraceEventType::kReceive, 1, 2, 1, 0,
                      MsgKind::kToken});
  std::ostringstream os;
  t.writeJsonl(os);
  const std::string out = os.str();

  std::istringstream lines(out);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"type\":"), std::string::npos);
    EXPECT_NE(line.find("\"round\":"), std::string::npos);
  }
  EXPECT_EQ(n, 2u);
  EXPECT_NE(out.find("\"transmit\""), std::string::npos);
  EXPECT_NE(out.find("\"peer\":null"), std::string::npos);
  EXPECT_NE(out.find("\"peer\":1"), std::string::npos);
  EXPECT_NE(out.find("\"kind\":\"token\""), std::string::npos);
}

}  // namespace
}  // namespace dsn
