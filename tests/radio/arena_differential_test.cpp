// Differential oracle for the arena rivals (gossip, adaptive gossip,
// counter- and distance-based suppression, RLNC): every scheme must
// produce bit-identical runs under the full-scan reference, the
// active-set scheduler, and the sharded round engine at every worker
// count, clean and under fault injection. The rivals are randomized,
// but their RNG draws hang off node state transitions, never off the
// scheduler — so scheduler identity is exact, not statistical.
//
// The sharded cases reuse the ShardedDifferentialTest suite name so
// CI's TSan job (which filters on it) races the new protocols too.
#include <gtest/gtest.h>

#include <string>

#include "broadcast/runner.hpp"
#include "core/sensor_network.hpp"

namespace dsn {
namespace {

constexpr BroadcastScheme kRivals[] = {
    BroadcastScheme::kGossip, BroadcastScheme::kGossipAdaptive,
    BroadcastScheme::kCounter, BroadcastScheme::kDistance,
    BroadcastScheme::kRlnc};

constexpr int kThreadCounts[] = {1, 2, 8};

ProtocolOptions withScheduling(ProtocolOptions opts, SimScheduling s) {
  opts.scheduling = s;
  return opts;
}

ProtocolOptions withThreads(ProtocolOptions opts, int threads) {
  opts.threads = threads;
  opts.shardSerialThreshold = 0;  // force the parallel path
  return opts;
}

void expectSameTrace(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.events().size(), b.events().size());
  ASSERT_EQ(a.droppedEvents(), b.droppedEvents());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    const TraceEvent& x = a.events()[i];
    const TraceEvent& y = b.events()[i];
    EXPECT_EQ(x.type, y.type) << "event " << i;
    EXPECT_EQ(x.round, y.round) << "event " << i;
    EXPECT_EQ(x.node, y.node) << "event " << i;
    EXPECT_EQ(x.peer, y.peer) << "event " << i;
    EXPECT_EQ(x.channel, y.channel) << "event " << i;
    EXPECT_EQ(x.msgKind, y.msgKind) << "event " << i;
  }
}

void expectSameRun(const BroadcastRun& a, const BroadcastRun& b) {
  EXPECT_EQ(a.sim.rounds, b.sim.rounds);
  EXPECT_EQ(a.sim.completed, b.sim.completed);
  EXPECT_EQ(a.sim.totalTransmissions, b.sim.totalTransmissions);
  EXPECT_EQ(a.sim.totalDeliveries, b.sim.totalDeliveries);
  EXPECT_EQ(a.sim.totalCollisions, b.sim.totalCollisions);
  EXPECT_EQ(a.sim.droppedTransmissions, b.sim.droppedTransmissions);
  EXPECT_EQ(a.sim.jammedLosses, b.sim.jammedLosses);
  EXPECT_EQ(a.intended, b.intended);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.lastDeliveryRound, b.lastDeliveryRound);
  EXPECT_EQ(a.maxAwakeRounds, b.maxAwakeRounds);
  EXPECT_DOUBLE_EQ(a.meanAwakeRounds, b.meanAwakeRounds);
  EXPECT_EQ(a.decodeFailures, b.decodeFailures);
  EXPECT_EQ(a.deliveryRound, b.deliveryRound);
  EXPECT_EQ(a.listenRounds, b.listenRounds);
  EXPECT_EQ(a.transmitRounds, b.transmitRounds);
  expectSameTrace(a.trace, b.trace);
}

NetworkConfig paperNetwork(std::size_t n, std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.nodeCount = n;
  cfg.seed = seed;
  return cfg;
}

// ---- active-set vs full-scan ----

TEST(ArenaDifferentialTest, CleanRivalsActiveVsFullScan) {
  const SensorNetwork net(paperNetwork(140, 0xA4E7A01));
  ProtocolOptions opts;
  opts.traceCapacity = 1 << 16;
  const NodeId source = net.clusterNet().root();
  for (const BroadcastScheme scheme : kRivals) {
    SCOPED_TRACE(toString(scheme));
    const auto active = net.broadcast(
        scheme, source, 7, withScheduling(opts, SimScheduling::kActiveSet));
    const auto full = net.broadcast(
        scheme, source, 7, withScheduling(opts, SimScheduling::kFullScan));
    expectSameRun(active, full);
  }
}

TEST(ArenaDifferentialTest, RivalsUnderDropsAndScheduledDeaths) {
  const SensorNetwork net(paperNetwork(150, 0xA4E7A02));
  ProtocolOptions opts;
  opts.dropProbability = 0.15;
  opts.deaths = {{5, 2}, {17, 0}, {33, 6}, {60, 10}};
  opts.traceCapacity = 1 << 16;
  const NodeId source = net.clusterNet().root();
  for (const BroadcastScheme scheme : kRivals) {
    SCOPED_TRACE(toString(scheme));
    const auto active = net.broadcast(
        scheme, source, 11, withScheduling(opts, SimScheduling::kActiveSet));
    const auto full = net.broadcast(
        scheme, source, 11, withScheduling(opts, SimScheduling::kFullScan));
    expectSameRun(active, full);
  }
}

TEST(ArenaDifferentialTest, RivalsUnderBurstLossAndJamZones) {
  const SensorNetwork net(paperNetwork(130, 0xA4E7A03));
  ProtocolOptions opts;
  opts.burst.pEnterBurst = 0.1;
  opts.burst.pExitBurst = 0.3;
  opts.burst.dropBurst = 0.9;
  opts.jamZones.push_back(
      {Point2D{300.0, 300.0}, 180.0, /*from=*/2, /*until=*/25});
  opts.traceCapacity = 1 << 16;
  const NodeId source = net.clusterNet().root();
  for (const BroadcastScheme scheme : kRivals) {
    SCOPED_TRACE(toString(scheme));
    const auto active = net.broadcast(
        scheme, source, 13, withScheduling(opts, SimScheduling::kActiveSet));
    const auto full = net.broadcast(
        scheme, source, 13, withScheduling(opts, SimScheduling::kFullScan));
    expectSameRun(active, full);
  }
}

// ---- sharded engine, every worker count ----

TEST(ShardedDifferentialTest, ArenaRivalsCleanAllThreadCounts) {
  const SensorNetwork net(paperNetwork(140, 0xA4E7A04));
  ProtocolOptions opts;
  opts.traceCapacity = 1 << 16;
  const NodeId source = net.clusterNet().root();
  for (const BroadcastScheme scheme : kRivals) {
    const auto reference = net.broadcast(scheme, source, 7, opts);
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE(std::string(toString(scheme)) + " threads=" +
                   std::to_string(threads));
      const auto sharded =
          net.broadcast(scheme, source, 7, withThreads(opts, threads));
      expectSameRun(sharded, reference);
    }
  }
}

TEST(ShardedDifferentialTest, ArenaRivalsUnderDropsAndDeaths) {
  const SensorNetwork net(paperNetwork(150, 0xA4E7A05));
  ProtocolOptions opts;
  opts.dropProbability = 0.15;
  opts.deaths = {{5, 2}, {17, 0}, {33, 6}, {60, 10}};
  opts.traceCapacity = 1 << 16;
  const NodeId source = net.clusterNet().root();
  for (const BroadcastScheme scheme : kRivals) {
    const auto reference = net.broadcast(scheme, source, 11, opts);
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE(std::string(toString(scheme)) + " threads=" +
                   std::to_string(threads));
      const auto sharded =
          net.broadcast(scheme, source, 11, withThreads(opts, threads));
      expectSameRun(sharded, reference);
    }
  }
}

TEST(ShardedDifferentialTest, ArenaRivalsUnderBurstAndJam) {
  const SensorNetwork net(paperNetwork(130, 0xA4E7A06));
  ProtocolOptions opts;
  opts.burst.pEnterBurst = 0.1;
  opts.burst.pExitBurst = 0.3;
  opts.burst.dropBurst = 0.9;
  opts.jamZones.push_back(
      {Point2D{300.0, 300.0}, 180.0, /*from=*/2, /*until=*/25});
  opts.traceCapacity = 1 << 16;
  const NodeId source = net.clusterNet().root();
  for (const BroadcastScheme scheme : kRivals) {
    const auto reference = net.broadcast(scheme, source, 13, opts);
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE(std::string(toString(scheme)) + " threads=" +
                   std::to_string(threads));
      const auto sharded =
          net.broadcast(scheme, source, 13, withThreads(opts, threads));
      expectSameRun(sharded, reference);
    }
  }
}

}  // namespace
}  // namespace dsn
