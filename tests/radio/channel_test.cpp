#include "radio/channel.hpp"

#include <gtest/gtest.h>

namespace dsn {
namespace {

Graph triangle() {
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(0, 2);
  return g;
}

Message msg(NodeId sender) {
  Message m;
  m.sender = sender;
  m.payload = 0xABCD;
  return m;
}

TEST(ChannelTest, SingleTransmitterDelivers) {
  const Graph g = triangle();
  std::vector<Action> acts(3, Action::sleep());
  acts[0] = Action::transmit(msg(0));
  acts[1] = Action::listen();
  acts[2] = Action::listen();
  const auto out = resolveRound(g, acts, 1);
  ASSERT_EQ(out.deliveries.size(), 2u);
  EXPECT_EQ(out.transmissions, 1u);
  EXPECT_EQ(out.collisions(), 0u);
  for (const auto& d : out.deliveries) EXPECT_EQ(d.transmitter, 0u);
}

TEST(ChannelTest, TwoTransmittersCollideAtCommonListener) {
  const Graph g = triangle();
  std::vector<Action> acts(3, Action::sleep());
  acts[0] = Action::transmit(msg(0));
  acts[1] = Action::transmit(msg(1));
  acts[2] = Action::listen();
  const auto out = resolveRound(g, acts, 1);
  EXPECT_TRUE(out.deliveries.empty());
  ASSERT_EQ(out.collisions(), 1u);
  EXPECT_EQ(out.collisionSites[0].listener, 2u);
}

TEST(ChannelTest, NoTransmitterMeansSilence) {
  const Graph g = triangle();
  std::vector<Action> acts(3, Action::listen());
  const auto out = resolveRound(g, acts, 1);
  EXPECT_TRUE(out.deliveries.empty());
  EXPECT_EQ(out.collisions(), 0u);
}

TEST(ChannelTest, TransmitterDoesNotReceive) {
  const Graph g = triangle();
  std::vector<Action> acts(3, Action::sleep());
  acts[0] = Action::transmit(msg(0));
  acts[1] = Action::transmit(msg(1));
  // 0 and 1 are neighbors but both transmit; neither receives.
  const auto out = resolveRound(g, acts, 1);
  EXPECT_TRUE(out.deliveries.empty());
}

TEST(ChannelTest, SleeperReceivesNothing) {
  const Graph g = triangle();
  std::vector<Action> acts(3, Action::sleep());
  acts[0] = Action::transmit(msg(0));
  const auto out = resolveRound(g, acts, 1);
  EXPECT_TRUE(out.deliveries.empty());
}

TEST(ChannelTest, NonNeighborDoesNotHear) {
  Graph g(3);
  g.addEdge(0, 1);  // 2 isolated
  std::vector<Action> acts(3, Action::sleep());
  acts[0] = Action::transmit(msg(0));
  acts[2] = Action::listen();
  const auto out = resolveRound(g, acts, 1);
  EXPECT_TRUE(out.deliveries.empty());
}

TEST(ChannelTest, SeparateChannelsDoNotInterfere) {
  const Graph g = triangle();
  std::vector<Action> acts(3, Action::sleep());
  acts[0] = Action::transmit(msg(0), 0);
  acts[1] = Action::transmit(msg(1), 1);
  acts[2] = Action::listen(kAllChannels);
  const auto out = resolveRound(g, acts, 2);
  ASSERT_EQ(out.deliveries.size(), 2u);  // wide-band hears both
  EXPECT_EQ(out.collisions(), 0u);
}

TEST(ChannelTest, SameChannelStillCollidesWithMultipleChannels) {
  const Graph g = triangle();
  std::vector<Action> acts(3, Action::sleep());
  acts[0] = Action::transmit(msg(0), 1);
  acts[1] = Action::transmit(msg(1), 1);
  acts[2] = Action::listen(kAllChannels);
  const auto out = resolveRound(g, acts, 2);
  EXPECT_TRUE(out.deliveries.empty());
  EXPECT_EQ(out.collisions(), 1u);
}

TEST(ChannelTest, NarrowBandListenerMissesOtherChannel) {
  const Graph g = triangle();
  std::vector<Action> acts(3, Action::sleep());
  acts[0] = Action::transmit(msg(0), 1);
  acts[2] = Action::listen(0);
  const auto out = resolveRound(g, acts, 2);
  EXPECT_TRUE(out.deliveries.empty());
  acts[2] = Action::listen(1);
  const auto out2 = resolveRound(g, acts, 2);
  EXPECT_EQ(out2.deliveries.size(), 1u);
}

TEST(ChannelTest, ChannelOutOfRangeRejected) {
  const Graph g = triangle();
  std::vector<Action> acts(3, Action::sleep());
  acts[0] = Action::transmit(msg(0), 3);
  EXPECT_THROW(resolveRound(g, acts, 2), PreconditionError);
}

TEST(ChannelTest, DeadTransmitterRejected) {
  Graph g = triangle();
  g.removeNode(0);
  std::vector<Action> acts(3, Action::sleep());
  acts[0] = Action::transmit(msg(0));
  EXPECT_THROW(resolveRound(g, acts, 1), PreconditionError);
}

TEST(ChannelTest, ActionVectorSizeMustMatch) {
  const Graph g = triangle();
  std::vector<Action> acts(2, Action::sleep());
  EXPECT_THROW(resolveRound(g, acts, 1), PreconditionError);
}

TEST(ChannelTest, ScratchGrowsWhenTopologyOutgrowsPrepare) {
  // Regression: a scratch prepared for a small graph and then reused
  // against a larger snapshot (node-move-in mid-campaign) must grow its
  // tables instead of indexing out of bounds.
  ResolveScratch scratch;
  scratch.prepare(3, 1);

  Graph g(6);  // larger than the prepared node count
  g.addEdge(4, 5);
  const CsrView csr = g.csrView();
  std::vector<Action> acts(6, Action::sleep());
  acts[4] = Action::transmit(msg(4));
  acts[5] = Action::listen();
  const std::vector<NodeId> transmitters{4};
  const auto& out = resolveRoundActive(csr, acts, transmitters, 1, scratch);
  ASSERT_EQ(out.deliveries.size(), 1u);
  EXPECT_EQ(out.deliveries[0].receiver, 5u);
  EXPECT_EQ(out.deliveries[0].transmitter, 4u);
  EXPECT_EQ(out.transmissions, 1u);

  // Never shrinks: preparing for fewer nodes keeps the larger tables.
  scratch.prepare(2, 1);
  const auto& again = resolveRoundActive(csr, acts, transmitters, 1, scratch);
  ASSERT_EQ(again.deliveries.size(), 1u);
  EXPECT_EQ(again.deliveries[0].receiver, 5u);
}

TEST(ChannelTest, HiddenTerminalScenario) {
  // Classic: 0 - 1 - 2 with 0,2 out of range; both transmit; 1 hears
  // noise (collision), neither transmitter knows.
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  std::vector<Action> acts(3, Action::sleep());
  acts[0] = Action::transmit(msg(0));
  acts[2] = Action::transmit(msg(2));
  acts[1] = Action::listen();
  const auto out = resolveRound(g, acts, 1);
  EXPECT_TRUE(out.deliveries.empty());
  EXPECT_EQ(out.collisions(), 1u);
  EXPECT_EQ(out.transmissions, 2u);
}

}  // namespace
}  // namespace dsn
