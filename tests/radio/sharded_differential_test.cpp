// Differential oracle for the spatially sharded round engine: at every
// worker count, every scheme and every fault regime must produce a run
// bit-identical to the active-set scheduler (which is itself pinned to
// the full-scan reference by scheduling_differential_test.cpp). Identity
// covers traces, per-node delivery rounds, and per-node energy — the
// tile merge at the round barrier is order-exact, not just
// count-preserving (DESIGN.md §14).
//
// Every test zeroes shardSerialThreshold so even these small fixtures
// exercise the parallel tile path instead of the serial fallback.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "broadcast/flooding_baseline.hpp"
#include "broadcast/inflight.hpp"
#include "broadcast/reliable.hpp"
#include "broadcast/runner.hpp"
#include "core/sensor_network.hpp"
#include "util/rng.hpp"

namespace dsn {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

ProtocolOptions withThreads(ProtocolOptions opts, int threads) {
  opts.threads = threads;
  opts.shardSerialThreshold = 0;  // force the parallel path
  return opts;
}

void expectSameTrace(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.events().size(), b.events().size());
  ASSERT_EQ(a.droppedEvents(), b.droppedEvents());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    const TraceEvent& x = a.events()[i];
    const TraceEvent& y = b.events()[i];
    EXPECT_EQ(x.type, y.type) << "event " << i;
    EXPECT_EQ(x.round, y.round) << "event " << i;
    EXPECT_EQ(x.node, y.node) << "event " << i;
    EXPECT_EQ(x.peer, y.peer) << "event " << i;
    EXPECT_EQ(x.channel, y.channel) << "event " << i;
    EXPECT_EQ(x.msgKind, y.msgKind) << "event " << i;
  }
}

void expectSameRun(const BroadcastRun& a, const BroadcastRun& b) {
  EXPECT_EQ(a.sim.rounds, b.sim.rounds);
  EXPECT_EQ(a.sim.completed, b.sim.completed);
  EXPECT_EQ(a.sim.totalTransmissions, b.sim.totalTransmissions);
  EXPECT_EQ(a.sim.totalDeliveries, b.sim.totalDeliveries);
  EXPECT_EQ(a.sim.totalCollisions, b.sim.totalCollisions);
  EXPECT_EQ(a.sim.droppedTransmissions, b.sim.droppedTransmissions);
  EXPECT_EQ(a.sim.jammedLosses, b.sim.jammedLosses);
  EXPECT_EQ(a.intended, b.intended);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.lastDeliveryRound, b.lastDeliveryRound);
  EXPECT_EQ(a.maxAwakeRounds, b.maxAwakeRounds);
  EXPECT_DOUBLE_EQ(a.meanAwakeRounds, b.meanAwakeRounds);
  EXPECT_EQ(a.deliveryRound, b.deliveryRound);
  EXPECT_EQ(a.listenRounds, b.listenRounds);
  EXPECT_EQ(a.transmitRounds, b.transmitRounds);
  expectSameTrace(a.trace, b.trace);
}

NetworkConfig paperNetwork(std::size_t n, std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.nodeCount = n;
  cfg.seed = seed;
  return cfg;
}

TEST(ShardedDifferentialTest, CleanBroadcastsAllSchemesAllThreadCounts) {
  const SensorNetwork net(paperNetwork(140, 0xD1FF01));
  ProtocolOptions opts;
  opts.traceCapacity = 1 << 16;
  for (const BroadcastScheme scheme :
       {BroadcastScheme::kCff, BroadcastScheme::kImprovedCff,
        BroadcastScheme::kDfo}) {
    const NodeId source = net.clusterNet().root();
    const auto reference = net.broadcast(scheme, source, 7, opts);
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE(std::string(toString(scheme)) + " threads=" +
                   std::to_string(threads));
      const auto sharded =
          net.broadcast(scheme, source, 7, withThreads(opts, threads));
      expectSameRun(sharded, reference);
    }
  }
}

TEST(ShardedDifferentialTest, MultiChannelCff) {
  const SensorNetwork net(paperNetwork(160, 0xD1FF02));
  ProtocolOptions opts;
  opts.channels = 3;
  opts.traceCapacity = 1 << 16;
  const NodeId source = net.clusterNet().root();
  const auto reference = net.broadcast(BroadcastScheme::kCff, source, 9, opts);
  for (const int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto sharded = net.broadcast(BroadcastScheme::kCff, source, 9,
                                       withThreads(opts, threads));
    expectSameRun(sharded, reference);
  }
}

TEST(ShardedDifferentialTest, DropsAndScheduledDeaths) {
  const SensorNetwork net(paperNetwork(150, 0xD1FF03));
  ProtocolOptions opts;
  opts.dropProbability = 0.15;
  opts.deaths = {{5, 2}, {17, 0}, {33, 6}, {60, 10}};
  opts.traceCapacity = 1 << 16;
  const NodeId source = net.clusterNet().root();
  for (const BroadcastScheme scheme :
       {BroadcastScheme::kCff, BroadcastScheme::kImprovedCff}) {
    const auto reference = net.broadcast(scheme, source, 11, opts);
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE(std::string(toString(scheme)) + " threads=" +
                   std::to_string(threads));
      const auto sharded =
          net.broadcast(scheme, source, 11, withThreads(opts, threads));
      expectSameRun(sharded, reference);
    }
  }
}

TEST(ShardedDifferentialTest, BurstLossAndJamZones) {
  const SensorNetwork net(paperNetwork(130, 0xD1FF04));
  ProtocolOptions opts;
  opts.burst.pEnterBurst = 0.1;
  opts.burst.pExitBurst = 0.3;
  opts.burst.dropBurst = 0.9;
  opts.jamZones.push_back(
      {Point2D{300.0, 300.0}, 180.0, /*from=*/2, /*until=*/25});
  opts.traceCapacity = 1 << 16;
  const NodeId source = net.clusterNet().root();
  const auto reference =
      net.broadcast(BroadcastScheme::kImprovedCff, source, 13, opts);
  for (const int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto sharded = net.broadcast(BroadcastScheme::kImprovedCff, source,
                                       13, withThreads(opts, threads));
    expectSameRun(sharded, reference);
  }
}

TEST(ShardedDifferentialTest, FloodingBaselineWithDrops) {
  // runFloodingBroadcast takes the graph directly, so no position vector
  // is auto-filled: the partition falls back to blocked id ranges, which
  // the merge must handle identically.
  const SensorNetwork net(paperNetwork(120, 0xD1FF05));
  FloodingConfig fc;
  ProtocolOptions opts;
  opts.dropProbability = 0.1;
  opts.traceCapacity = 1 << 16;
  const NodeId source = net.clusterNet().root();
  const auto reference =
      runFloodingBroadcast(net.graph(), source, 17, fc, opts);
  for (const int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto sharded = runFloodingBroadcast(net.graph(), source, 17, fc,
                                              withThreads(opts, threads));
    expectSameRun(sharded, reference);
  }
}

TEST(ShardedDifferentialTest, ReliableBroadcastRepairRounds) {
  const SensorNetwork net(paperNetwork(140, 0xD1FF06));
  ReliableOptions opts;
  opts.base.dropProbability = 0.25;  // force the NACK/repair machinery
  const NodeId source = net.clusterNet().root();
  const auto reference =
      net.reliableBroadcast(BroadcastScheme::kCff, source, 19, opts);
  for (const int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ReliableOptions o = opts;
    o.base = withThreads(o.base, threads);
    const auto sharded =
        net.reliableBroadcast(BroadcastScheme::kCff, source, 19, o);
    EXPECT_EQ(sharded.intended, reference.intended);
    EXPECT_EQ(sharded.delivered, reference.delivered);
    EXPECT_EQ(sharded.repairRoundsUsed, reference.repairRoundsUsed);
    EXPECT_EQ(sharded.nacksSent, reference.nacksSent);
    expectSameRun(sharded.wave, reference.wave);
  }
}

TEST(ShardedDifferentialTest, ExplicitTileKnobsDoNotChangeResults) {
  // Correctness must never depend on the partition geometry: coarse,
  // fine, and degenerate single-tile partitions all merge to the same
  // story.
  const SensorNetwork net(paperNetwork(150, 0xD1FF07));
  ProtocolOptions opts;
  opts.traceCapacity = 1 << 16;
  const NodeId source = net.clusterNet().root();
  const auto reference = net.broadcast(BroadcastScheme::kCff, source, 23, opts);
  for (const std::uint32_t tiles : {1u, 4u, 97u}) {
    SCOPED_TRACE("tileTarget=" + std::to_string(tiles));
    ProtocolOptions o = withThreads(opts, 4);
    o.tileTarget = tiles;
    const auto sharded = net.broadcast(BroadcastScheme::kCff, source, 23, o);
    expectSameRun(sharded, reference);
  }
}

// ---- interleaved move/broadcast programs ----
//
// The sharded engine must stay order-exact through the reconfiguration
// seam too: a wave paused mid-flight while nodes move (and the position
// partition is refreshed under it) replays bit-identically at every
// worker count. Each run rebuilds the network from the same seed and
// replays the same mutation script, so only the scheduler varies.

struct InterleavedOutcome {
  std::size_t rounds = 0;
  std::size_t transmissions = 0;
  std::size_t deliveries = 0;
  std::size_t collisions = 0;
  std::size_t delivered = 0;
  std::vector<std::uint8_t> payloadByNode;
};

InterleavedOutcome runInterleavedMoves(BroadcastScheme scheme, int threads,
                                       std::uint64_t seed) {
  SensorNetwork net(paperNetwork(130, seed));
  ProtocolOptions opts;
  opts.threads = threads;
  opts.shardSerialThreshold = 0;
  if (threads > 0) {
    opts.nodePositions.resize(net.graph().size());
    for (NodeId v = 0; v < net.graph().size(); ++v)
      if (net.index().contains(v)) opts.nodePositions[v] = net.index().position(v);
    opts.tileMinEdge = net.range();
  }

  const NodeId source = net.clusterNet().root();
  InFlightBroadcast wave(net.clusterNet(), scheme, source, 0x5E6, opts);

  // Three segments; between them a deterministic drift of a few nodes —
  // enough to migrate ids across tile boundaries mid-wave.
  Rng rng(seed ^ 0xD1FF);
  for (int segment = 0; segment < 3; ++segment) {
    wave.advanceTo(wave.cursor() + 4);
    if (wave.finished()) break;
    for (int k = 0; k < 4; ++k) {
      const NodeId v = net.randomNode(rng);
      if (v == source) continue;
      const Point2D p = net.position(v);
      net.moveSensor(v, {p.x + rng.uniformReal(-60.0, 60.0),
                         p.y + rng.uniformReal(-60.0, 60.0)});
      wave.noteDisplaced(v);
    }
    wave.refreshPositions(net.index());
    wave.onTopologyChanged();
  }
  wave.runToCompletion();

  const InFlightReport r = wave.finish();
  InterleavedOutcome out;
  out.rounds = static_cast<std::size_t>(r.sim.rounds);
  out.transmissions = r.sim.totalTransmissions;
  out.deliveries = r.sim.totalDeliveries;
  out.collisions = r.sim.totalCollisions;
  out.delivered = r.delivered;
  out.payloadByNode.reserve(wave.intended().size());
  for (NodeId v : wave.intended())
    out.payloadByNode.push_back(wave.deliveredTo(v) ? 1 : 0);
  return out;
}

TEST(ShardedDifferentialTest, InterleavedMoveBroadcastPrograms) {
  for (const BroadcastScheme scheme :
       {BroadcastScheme::kCff, BroadcastScheme::kImprovedCff}) {
    for (const std::uint64_t seed : {0xD1FF10ull, 0xD1FF11ull}) {
      const auto reference = runInterleavedMoves(scheme, /*threads=*/0, seed);
      for (const int threads : kThreadCounts) {
        SCOPED_TRACE(std::string(toString(scheme)) + " seed=" +
                     std::to_string(seed) + " threads=" +
                     std::to_string(threads));
        const auto sharded = runInterleavedMoves(scheme, threads, seed);
        EXPECT_EQ(sharded.rounds, reference.rounds);
        EXPECT_EQ(sharded.transmissions, reference.transmissions);
        EXPECT_EQ(sharded.deliveries, reference.deliveries);
        EXPECT_EQ(sharded.collisions, reference.collisions);
        EXPECT_EQ(sharded.delivered, reference.delivered);
        EXPECT_EQ(sharded.payloadByNode, reference.payloadByNode);
      }
    }
  }
}

}  // namespace
}  // namespace dsn
