// BroadcastRun accounting helpers.
#include <gtest/gtest.h>

#include "broadcast/run_result.hpp"

namespace dsn {
namespace {

TEST(BroadcastRunTest, CoverageEdgeCases) {
  BroadcastRun r;
  EXPECT_DOUBLE_EQ(r.coverage(), 1.0);  // nothing intended = vacuous
  r.intended = 10;
  r.delivered = 7;
  EXPECT_DOUBLE_EQ(r.coverage(), 0.7);
  EXPECT_FALSE(r.allDelivered());
  r.delivered = 10;
  EXPECT_TRUE(r.allDelivered());
}

TEST(BroadcastRunTest, CompletionRounds) {
  BroadcastRun r;
  EXPECT_EQ(r.completionRounds(), 0);  // nothing delivered
  r.lastDeliveryRound = 14;
  EXPECT_EQ(r.completionRounds(), 15);
}

TEST(MessageTest, DefaultsAreInert) {
  Message m;
  EXPECT_EQ(m.kind, MsgKind::kData);
  EXPECT_EQ(m.sender, kInvalidNode);
  EXPECT_EQ(m.target, kInvalidNode);
  EXPECT_EQ(m.slot, kNoSlot);
  EXPECT_EQ(m.group, kNoGroup);
}

TEST(ActionTest, Factories) {
  const Action s = Action::sleep();
  EXPECT_EQ(s.type, Action::Type::kSleep);
  EXPECT_FALSE(s.isAwake());

  const Action l = Action::listen();
  EXPECT_EQ(l.type, Action::Type::kListen);
  EXPECT_EQ(l.channel, kAllChannels);
  EXPECT_TRUE(l.isAwake());

  const Action l2 = Action::listen(3);
  EXPECT_EQ(l2.channel, 3u);

  Message m;
  m.payload = 9;
  const Action t = Action::transmit(m, 2);
  EXPECT_EQ(t.type, Action::Type::kTransmit);
  EXPECT_EQ(t.channel, 2u);
  EXPECT_EQ(t.message.payload, 9u);
  EXPECT_TRUE(t.isAwake());
}

}  // namespace
}  // namespace dsn
