// Probabilistic flooding baseline: behaviour and the broadcast-storm
// failure mode the paper's structured protocols avoid.
#include <gtest/gtest.h>

#include "broadcast/flooding_baseline.hpp"
#include "broadcast/improved_cff.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

using testutil::randomNet;

TEST(FloodingTest, PairDelivers) {
  Graph g(2);
  g.addEdge(0, 1);
  const auto run = runFloodingBroadcast(g, 0, 7);
  EXPECT_TRUE(run.allDelivered());
  EXPECT_EQ(run.deliveryRound[1], 0);
}

TEST(FloodingTest, LargeWindowUsuallyCovers) {
  auto f = randomNet(3001, 120);
  FloodingConfig cfg;
  cfg.contentionWindow = 64;  // plenty of dispersion
  const auto run = runFloodingBroadcast(*f.graph, 0, 1, cfg);
  EXPECT_GT(run.coverage(), 0.9);
}

TEST(FloodingTest, TinyWindowStormsItself) {
  // Contention window 1: every served node retransmits in the very next
  // round — synchronized relays collide and coverage craters on dense
  // graphs (the classic broadcast storm).
  auto f = randomNet(3002, 200, 5, 60.0);  // dense
  FloodingConfig tiny;
  tiny.contentionWindow = 1;
  const auto storm = runFloodingBroadcast(*f.graph, 0, 1, tiny);
  FloodingConfig wide;
  wide.contentionWindow = 64;
  const auto calm = runFloodingBroadcast(*f.graph, 0, 1, wide);
  EXPECT_GT(calm.coverage(), storm.coverage());
  EXPECT_GT(storm.collisions, 0u);
}

TEST(FloodingTest, GossipZeroNeverRelays) {
  auto f = randomNet(3003, 60);
  FloodingConfig cfg;
  cfg.gossipProbability = 0.0;
  const auto run = runFloodingBroadcast(*f.graph, 0, 1, cfg);
  // Only the source transmits; only its direct neighbors are served.
  EXPECT_EQ(run.transmissions, 1u);
  EXPECT_LE(run.delivered, f.graph->degree(0) + 1);
}

TEST(FloodingTest, DeterministicGivenSeed) {
  auto f = randomNet(3004, 100);
  FloodingConfig cfg;
  cfg.seed = 99;
  const auto a = runFloodingBroadcast(*f.graph, 0, 1, cfg);
  const auto b = runFloodingBroadcast(*f.graph, 0, 1, cfg);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.collisions, b.collisions);
}

TEST(FloodingTest, DisconnectedIntendedOnlyComponent) {
  Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(2, 3);
  const auto run = runFloodingBroadcast(g, 0, 1);
  EXPECT_EQ(run.intended, 2u);
  EXPECT_TRUE(run.allDelivered());
}

TEST(FloodingTest, StructuredProtocolBeatsStormOnEnergy) {
  // CFF transmits once per backbone node; flooding transmits once per
  // served node — the structured protocol sends far fewer frames.
  auto f = randomNet(3005, 200);
  const auto cff = runImprovedCffBroadcast(*f.net, f.net->root(), 1);
  FloodingConfig cfg;
  cfg.contentionWindow = 32;
  const auto storm = runFloodingBroadcast(*f.graph, f.net->root(), 1, cfg);
  EXPECT_TRUE(cff.allDelivered());
  EXPECT_LT(cff.transmissions, storm.transmissions);
}

TEST(FloodingTest, InvalidWindowRejected) {
  Graph g(2);
  g.addEdge(0, 1);
  FloodingConfig cfg;
  cfg.contentionWindow = 0;
  EXPECT_THROW(runFloodingBroadcast(g, 0, 1, cfg), PreconditionError);
}

}  // namespace
}  // namespace dsn
