// k-channel variants (Theorem 1(3) / §3.3 "Multi-Channels").
#include <gtest/gtest.h>

#include "broadcast/cff_flooding.hpp"
#include "broadcast/improved_cff.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

using testutil::randomNet;

class MultiChannelSweep : public ::testing::TestWithParam<Channel> {};

TEST_P(MultiChannelSweep, CffDeliversOnKChannels) {
  const Channel k = GetParam();
  auto f = randomNet(701, 200);
  ProtocolOptions opts;
  opts.channels = k;
  const auto run = runCffBroadcast(*f.net, f.net->root(), 1, opts);
  EXPECT_TRUE(run.sim.completed);
  EXPECT_TRUE(run.allDelivered()) << "k=" << k;
}

TEST_P(MultiChannelSweep, IcffDeliversOnKChannels) {
  const Channel k = GetParam();
  auto f = randomNet(702, 200);
  ProtocolOptions opts;
  opts.channels = k;
  const auto run = runImprovedCffBroadcast(*f.net, f.net->root(), 1, opts);
  EXPECT_TRUE(run.sim.completed);
  EXPECT_TRUE(run.allDelivered()) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Channels, MultiChannelSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(MultiChannelTest, RoundsShrinkRoughlyByK) {
  auto f = randomNet(703, 300, 6, 60.0);  // dense: big windows
  ProtocolOptions one;
  one.channels = 1;
  const auto run1 = runCffBroadcast(*f.net, f.net->root(), 1, one);
  ProtocolOptions four;
  four.channels = 4;
  const auto run4 = runCffBroadcast(*f.net, f.net->root(), 1, four);
  EXPECT_TRUE(run1.allDelivered());
  EXPECT_TRUE(run4.allDelivered());
  // Theorem 1(3): schedule ≈ /k. Window rounding gives ceil(Δ/k) per
  // depth, so allow generous slack around the ideal quarter.
  EXPECT_LT(run4.scheduleLength, run1.scheduleLength);
  EXPECT_LE(run4.scheduleLength,
            run1.scheduleLength / 2);  // at least a 2x win for k=4
}

TEST(MultiChannelTest, AwakeShrinksWithK) {
  auto f = randomNet(704, 300, 6, 60.0);
  ProtocolOptions one;
  one.channels = 1;
  ProtocolOptions four;
  four.channels = 4;
  const auto run1 = runImprovedCffBroadcast(*f.net, f.net->root(), 1, one);
  const auto run4 = runImprovedCffBroadcast(*f.net, f.net->root(), 1, four);
  EXPECT_TRUE(run1.allDelivered());
  EXPECT_TRUE(run4.allDelivered());
  EXPECT_LE(run4.maxAwakeRounds, run1.maxAwakeRounds);
}

TEST(MultiChannelTest, SameSlotSameChannelStillOrthogonal) {
  // Two nodes with slots s and s+1 share a round when k>=2 but use
  // different channels; wide-band receivers get the uniquely-slotted one.
  // This is implicitly exercised above; here we check determinism: the
  // same run twice gives identical results.
  auto f = randomNet(705, 150);
  ProtocolOptions opts;
  opts.channels = 2;
  const auto a = runCffBroadcast(*f.net, f.net->root(), 1, opts);
  const auto b = runCffBroadcast(*f.net, f.net->root(), 1, opts);
  EXPECT_EQ(a.sim.rounds, b.sim.rounds);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.maxAwakeRounds, b.maxAwakeRounds);
}

}  // namespace
}  // namespace dsn
