// Model-based oracle for the PRUNED multicast: predicts, from the
// structure and relay lists alone, exactly which nodes end up with the
// payload — including the starved ones (the §3.4 pruning gap). The radio
// simulation must agree node-for-node, so the protocol, the channel rule
// and the relay-list maintenance cross-check each other.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "broadcast/improved_cff.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

using testutil::randomNet;

/// Mirrors predictIcffDelivery (oracle_test.cpp) with the relay filter:
/// a backbone node transmits in either phase only when it has the
/// payload AND relays the group.
std::set<NodeId> predictPrunedMulticast(const ClusterNet& net,
                                        NodeId source, GroupId g) {
  std::set<NodeId> has;
  for (NodeId v = source; v != kInvalidNode; v = net.parent(v))
    has.insert(v);

  const Graph& graph = net.graph();
  auto relays = [&](NodeId v) { return net.relaysGroup(v, g); };

  int backboneHeight = 0;
  for (NodeId v : net.backboneNodes())
    backboneHeight =
        std::max(backboneHeight, static_cast<int>(net.depth(v)));

  for (int i = 0; i <= backboneHeight; ++i) {
    std::set<NodeId> tx;
    for (NodeId v : net.backboneNodes())
      if (net.depth(v) == i && net.bSlot(v) != kNoSlot && has.count(v) &&
          relays(v))
        tx.insert(v);
    std::set<NodeId> gained;
    for (NodeId v : net.backboneNodes()) {
      if (net.depth(v) != i + 1 || has.count(v)) continue;
      // Listeners in the pruned multicast: backbone nodes that relay or
      // are members (others are idle and asleep).
      if (!relays(v) && !net.inGroup(v, g)) continue;
      std::map<TimeSlot, int> bySlot;
      for (NodeId u : graph.neighbors(v))
        if (tx.count(u)) ++bySlot[net.bSlot(u)];
      for (const auto& [slot, count] : bySlot)
        if (count == 1) {
          gained.insert(v);
          break;
        }
    }
    has.insert(gained.begin(), gained.end());
  }

  std::set<NodeId> tx;
  for (NodeId v : net.backboneNodes())
    if (net.lSlot(v) != kNoSlot && has.count(v) && relays(v))
      tx.insert(v);
  for (NodeId v : net.pureMembers()) {
    if (has.count(v) || !net.inGroup(v, g)) continue;
    std::map<TimeSlot, int> bySlot;
    for (NodeId u : graph.neighbors(v))
      if (tx.count(u)) ++bySlot[net.lSlot(u)];
    for (const auto& [slot, count] : bySlot)
      if (count == 1) {
        has.insert(v);
        break;
      }
  }
  return has;
}

class MulticastOracleSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MulticastOracleSweep, SimulationMatchesPrunedOracle) {
  const auto seed = GetParam();
  auto f = randomNet(seed, 150);
  Rng rng(seed);
  constexpr GroupId g = 1;
  for (NodeId v : f.net->netNodes())
    if (rng.chance(0.25)) f.net->joinGroup(v, g);

  const auto predicted =
      predictPrunedMulticast(*f.net, f.net->root(), g);
  const auto run = runMulticast(*f.net, f.net->root(), g, 1,
                                MulticastMode::kPrunedRelay);
  // Compare on group members (the intended set).
  for (NodeId v : f.net->netNodes()) {
    if (!f.net->inGroup(v, g)) continue;
    const bool got = run.deliveryRound[v] >= 0;
    EXPECT_EQ(got, predicted.count(v) != 0)
        << "member " << v << " seed " << seed;
  }
}

// Seeds 1/3/17 are known gap instances (the oracle must predict the
// misses too); the rest are clean draws.
INSTANTIATE_TEST_SUITE_P(Seeds, MulticastOracleSweep,
                         ::testing::Values(1u, 3u, 17u, 2u, 5u, 10u,
                                           11u, 12u));

TEST(MulticastOracleTest, OracleConfirmsGapSeedsMissSomeone) {
  int gapSeeds = 0;
  for (std::uint64_t seed : {1u, 3u, 17u}) {
    auto f = randomNet(seed, 150);
    Rng rng(seed);
    for (NodeId v : f.net->netNodes())
      if (rng.chance(0.25)) f.net->joinGroup(v, 1);
    const auto predicted =
        predictPrunedMulticast(*f.net, f.net->root(), 1);
    for (NodeId v : f.net->netNodes()) {
      if (f.net->inGroup(v, 1) && !predicted.count(v)) {
        ++gapSeeds;
        break;
      }
    }
  }
  EXPECT_EQ(gapSeeds, 3);
}

}  // namespace
}  // namespace dsn
