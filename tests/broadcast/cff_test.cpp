// Algorithm 1 (collision-free flooding over the whole CNet).
#include <gtest/gtest.h>

#include <tuple>

#include "broadcast/cff_flooding.hpp"
#include "cluster/backbone.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

using testutil::buildNet;
using testutil::randomNet;

TEST(CffTest, StarDeliversInOneWindow) {
  const auto pts = deployStar(8, 50.0);
  auto f = buildNet(pts, 50.0);
  const auto run = runCffBroadcast(*f.net, 0, 0xF00D);
  EXPECT_TRUE(run.sim.completed);
  EXPECT_TRUE(run.allDelivered());
  EXPECT_EQ(run.collisions, 0u);
  EXPECT_EQ(run.transmissions, 1u);  // the hub floods once
}

TEST(CffTest, LineFloodsDepthByDepth) {
  const auto pts = deployLine(9, 50.0);
  auto f = buildNet(pts, 50.0);
  const auto run = runCffBroadcast(*f.net, 0, 1);
  EXPECT_TRUE(run.allDelivered());
  EXPECT_EQ(run.collisions, 0u);
  // Depth i receives strictly after depth i-1.
  // Each internal node transmits exactly once: 8 transmitters on a line.
  EXPECT_EQ(run.transmissions, 8u);
}

class CffSweep : public ::testing::TestWithParam<
                     std::tuple<std::uint64_t, std::size_t, int>> {};

TEST_P(CffSweep, FullDeliveryNoCollisions) {
  const auto [seed, n, fieldUnits] = GetParam();
  auto f = randomNet(seed, n, fieldUnits);
  Rng rng(seed);
  const auto nodes = f.net->netNodes();
  const NodeId source = nodes[rng.pickIndex(nodes)];
  const auto run = runCffBroadcast(*f.net, source, 0xAB);
  EXPECT_TRUE(run.sim.completed);
  EXPECT_TRUE(run.allDelivered())
      << "coverage " << run.coverage() << " seed " << seed;
  // Collisions at duplicated slots are expected and harmless: the slot
  // conditions guarantee every receiver one *collision-free* slot, not a
  // globally collision-free ether.
}

INSTANTIATE_TEST_SUITE_P(
    RandomNetworks, CffSweep,
    ::testing::Values(std::make_tuple(401u, std::size_t{50}, 8),
                      std::make_tuple(402u, std::size_t{120}, 10),
                      std::make_tuple(403u, std::size_t{250}, 10),
                      std::make_tuple(404u, std::size_t{150}, 12),
                      std::make_tuple(405u, std::size_t{100}, 4),
                      std::make_tuple(406u, std::size_t{80}, 16)));

TEST(CffTest, CompletionWithinLemma1Bound) {
  auto f = randomNet(411, 200);
  const auto run = runCffBroadcast(*f.net, f.net->root(), 1);
  EXPECT_TRUE(run.allDelivered());
  // Lemma 1: Δ(h+1) rounds (source = root, so no path prefix).
  const Round bound =
      static_cast<Round>(f.net->rootMaxUSlot()) * (f.net->height() + 1);
  EXPECT_LE(run.completionRounds(), bound + 1);
}

TEST(CffTest, AwakeWithinTwoWindows) {
  auto f = randomNet(412, 200);
  const auto run = runCffBroadcast(*f.net, f.net->root(), 1);
  // Lemma 1: every node awake at most 2Δ rounds.
  EXPECT_LE(run.maxAwakeRounds,
            2 * static_cast<std::size_t>(f.net->rootMaxUSlot()));
}

TEST(CffTest, NonRootSourceRelaysThroughRoot) {
  auto f = randomNet(413, 150);
  // Deepest node as source maximizes the path prefix.
  NodeId deepest = f.net->root();
  for (NodeId v : f.net->netNodes())
    if (f.net->depth(v) > f.net->depth(deepest)) deepest = v;
  ASSERT_GT(f.net->depth(deepest), 1);
  const auto run = runCffBroadcast(*f.net, deepest, 1);
  EXPECT_TRUE(run.allDelivered());
  EXPECT_EQ(run.collisions, 0u);
  // Path prefix shows up in the schedule.
  EXPECT_GE(run.scheduleLength, static_cast<Round>(f.net->depth(deepest)));
}

TEST(CffTest, DeliveryOrderRespectsDepth) {
  auto f = randomNet(414, 120);
  const auto& net = *f.net;
  // Probe: deliveries must happen window by window — a node at larger
  // depth never receives before a node at smaller depth finished its
  // window. Verify via per-node payload rounds using the protocol
  // endpoints? The run result only keeps the max, so check the schedule
  // relation instead: completion <= schedule and > height (at least one
  // round per depth).
  const auto run = runCffBroadcast(*f.net, net.root(), 1);
  EXPECT_TRUE(run.allDelivered());
  EXPECT_LE(run.completionRounds(), run.scheduleLength);
  EXPECT_GE(run.completionRounds(), static_cast<Round>(net.height()));
}

TEST(CffTest, NodeDeathLeavesRestCovered) {
  // Robustness claim (§3.3): unlike DFO, other branches keep relaying.
  auto f = randomNet(415, 150);
  // Kill one mid-depth backbone node from the start.
  NodeId victim = kInvalidNode;
  for (NodeId v : f.net->backboneNodes()) {
    if (f.net->depth(v) == 2 && !f.net->children(v).empty()) {
      victim = v;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNode);
  ProtocolOptions opts;
  opts.deaths.emplace_back(victim, 0);
  const auto run = runCffBroadcast(*f.net, f.net->root(), 1, opts);
  EXPECT_FALSE(run.allDelivered());  // the victim itself at minimum
  // But coverage stays high — only nodes exclusively served by the
  // victim can miss.
  EXPECT_GT(run.coverage(), 0.5);
}

TEST(CffTest, SingleNode) {
  Graph g(1);
  ClusterNet net(g);
  net.moveIn(0);
  const auto run = runCffBroadcast(net, 0, 3);
  EXPECT_TRUE(run.sim.completed);
  EXPECT_TRUE(run.allDelivered());
}

}  // namespace
}  // namespace dsn
