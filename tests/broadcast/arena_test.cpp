// Unit tests for the arena rivals (gossip, adaptive gossip, counter- and
// distance-based suppression, RLNC) and regression tests for the
// CFF-family-only assumptions the arena surfaced: reliable mode and the
// in-flight engine require a slotted scheme, and distance-based
// suppression requires node positions.
#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "broadcast/gossip.hpp"
#include "broadcast/inflight.hpp"
#include "broadcast/reliable.hpp"
#include "broadcast/rlnc.hpp"
#include "broadcast/runner.hpp"
#include "broadcast/suppression.hpp"
#include "core/sensor_network.hpp"
#include "util/error.hpp"

namespace dsn {
namespace {

NetworkConfig paperNetwork(std::size_t n, std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.nodeCount = n;
  cfg.seed = seed;
  return cfg;
}

SensorNetwork gridNet(std::size_t n) {
  NetworkConfig cfg;
  cfg.nodeCount = n;
  cfg.deployment = DeploymentKind::kGrid;
  return SensorNetwork(cfg);
}

// ---- roster plumbing ----

TEST(ArenaTest, SchemeWordsRoundTrip) {
  const std::string_view words[] = {"dfo",     "cff",     "icff",
                                    "flood",   "gossip",  "agossip",
                                    "counter", "distance", "rlnc"};
  static_assert(std::size(words) == kAllBroadcastSchemes.size());
  for (std::size_t i = 0; i < kAllBroadcastSchemes.size(); ++i) {
    BroadcastScheme parsed{};
    EXPECT_TRUE(parseBroadcastScheme(words[i], parsed)) << words[i];
    EXPECT_EQ(parsed, kAllBroadcastSchemes[i]) << words[i];
    EXPECT_NE(std::string_view(toString(kAllBroadcastSchemes[i])), "?");
  }
  BroadcastScheme parsed{};
  EXPECT_FALSE(parseBroadcastScheme("warp", parsed));
  EXPECT_FALSE(parseBroadcastScheme("", parsed));
}

TEST(ArenaTest, SchemeClassPredicatesPartitionTheRoster) {
  for (const BroadcastScheme s : kAllBroadcastSchemes) {
    EXPECT_NE(isClusterScheme(s), isRandomizedScheme(s)) << toString(s);
    if (isSlottedScheme(s)) {
      EXPECT_TRUE(isClusterScheme(s)) << toString(s);
    }
  }
  EXPECT_TRUE(isSlottedScheme(BroadcastScheme::kCff));
  EXPECT_TRUE(isSlottedScheme(BroadcastScheme::kImprovedCff));
  EXPECT_FALSE(isSlottedScheme(BroadcastScheme::kDfo));
  EXPECT_FALSE(isSlottedScheme(BroadcastScheme::kGossip));
}

// ---- behavior on a clean, well-connected deployment ----

TEST(ArenaTest, RivalsDeliverOnCleanGrid) {
  // A 100-node grid is dense and connected: the suppression schemes and
  // plain gossip at p=0.65 reach (nearly) everyone; every run satisfies
  // the structural basics the fuzz oracle battery also checks.
  const SensorNetwork net = gridNet(100);
  const NodeId source = net.clusterNet().root();
  ProtocolOptions opts;
  for (const BroadcastScheme scheme :
       {BroadcastScheme::kFlooding, BroadcastScheme::kGossip,
        BroadcastScheme::kGossipAdaptive, BroadcastScheme::kCounter,
        BroadcastScheme::kDistance, BroadcastScheme::kRlnc}) {
    SCOPED_TRACE(toString(scheme));
    const auto run = net.broadcast(scheme, source, 0xBEEF, opts);
    EXPECT_EQ(run.intended, 100u);
    EXPECT_GE(run.delivered, 1u);  // the source always counts
    EXPECT_LE(run.delivered, run.intended);
    EXPECT_EQ(run.deliveryRound[source], 0);
    EXPECT_GT(run.transmissions, 0u);
    EXPECT_EQ(run.decodeFailures, 0u);
    // RLNC's default budgets drown in collisions on a dense grid (its
    // decode story is RlncDecodesFullGenerationOnDenseNet, with budgets
    // sized for the topology); everyone else spreads well here.
    if (scheme != BroadcastScheme::kRlnc) {
      EXPECT_GE(run.coverage(), 0.5);
    }
  }
}

TEST(ArenaTest, RunsAreSeedDeterministic) {
  const SensorNetwork net(paperNetwork(120, 0xA4E7A10));
  const NodeId source = net.clusterNet().root();
  ProtocolOptions opts;
  opts.arena.seed = 0x1234;
  for (const BroadcastScheme scheme :
       {BroadcastScheme::kGossip, BroadcastScheme::kCounter,
        BroadcastScheme::kDistance, BroadcastScheme::kRlnc}) {
    SCOPED_TRACE(toString(scheme));
    const auto a = net.broadcast(scheme, source, 5, opts);
    const auto b = net.broadcast(scheme, source, 5, opts);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.lastDeliveryRound, b.lastDeliveryRound);
    EXPECT_EQ(a.transmissions, b.transmissions);
    EXPECT_EQ(a.collisions, b.collisions);
    EXPECT_EQ(a.deliveryRound, b.deliveryRound);
  }
}

TEST(ArenaTest, GossipSeedChangesTheCoinFlips) {
  const SensorNetwork net(paperNetwork(120, 0xA4E7A11));
  const NodeId source = net.clusterNet().root();
  ProtocolOptions a;
  a.arena.seed = 1;
  ProtocolOptions b;
  b.arena.seed = 2;
  const auto ra = net.broadcast(BroadcastScheme::kGossip, source, 5, a);
  const auto rb = net.broadcast(BroadcastScheme::kGossip, source, 5, b);
  // Different relay coins and backoffs: the runs cannot be identical in
  // every observable (collision here would mean the seed is ignored).
  EXPECT_TRUE(ra.transmissions != rb.transmissions ||
              ra.deliveryRound != rb.deliveryRound);
}

TEST(ArenaTest, CounterThresholdControlsSuppression) {
  // Threshold 1 suppresses a relay after a single overheard duplicate;
  // a huge threshold never suppresses, degenerating to flooding with a
  // listen-heavy schedule. Strictly fewer transmissions at threshold 1.
  const SensorNetwork net = gridNet(100);
  const NodeId source = net.clusterNet().root();
  ProtocolOptions tight;
  tight.arena.counterThreshold = 1;
  ProtocolOptions loose;
  loose.arena.counterThreshold = 1000;
  const auto few = net.broadcast(BroadcastScheme::kCounter, source, 5, tight);
  const auto many = net.broadcast(BroadcastScheme::kCounter, source, 5, loose);
  EXPECT_LT(few.transmissions, many.transmissions);
}

TEST(ArenaTest, DistanceRadiusControlsSuppression) {
  // Radius 0 suppresses nobody (no sender is within distance 0);
  // a field-sized radius suppresses every receiver except the ones
  // that never hear a close transmitter — i.e. nearly everyone.
  const SensorNetwork net = gridNet(100);
  const NodeId source = net.clusterNet().root();
  ProtocolOptions none;
  none.arena.suppressRadius = 0.0;
  ProtocolOptions all;
  all.arena.suppressRadius = 1e9;
  const auto many = net.broadcast(BroadcastScheme::kDistance, source, 5, none);
  const auto few = net.broadcast(BroadcastScheme::kDistance, source, 5, all);
  EXPECT_LT(few.transmissions, many.transmissions);
}

TEST(ArenaTest, RlncDecodesFullGenerationOnDenseNet) {
  // On a dense grid with a generous packet budget every reached node
  // collects four innovative packets and decodes; decodeFailures != 0
  // would mean the field or elimination code corrupted a symbol.
  const SensorNetwork net = gridNet(64);
  const NodeId source = net.clusterNet().root();
  ProtocolOptions opts;
  opts.arena.rlncSourceBudget = 24;
  opts.arena.rlncRelayBudget = 12;
  const auto run = net.broadcast(BroadcastScheme::kRlnc, source, 0xCAFE, opts);
  EXPECT_EQ(run.decodeFailures, 0u);
  EXPECT_GT(run.delivered, 1u);
}

// ---- latent-assumption audit regressions ----

TEST(ArenaTest, ReliableModeRejectsNonSlottedSchemes) {
  const SensorNetwork net(paperNetwork(60, 0xA4E7A12));
  const NodeId source = net.clusterNet().root();
  ReliableOptions opts;
  for (const BroadcastScheme scheme :
       {BroadcastScheme::kDfo, BroadcastScheme::kFlooding,
        BroadcastScheme::kGossip, BroadcastScheme::kRlnc}) {
    SCOPED_TRACE(toString(scheme));
    EXPECT_THROW(net.reliableBroadcast(scheme, source, 1, opts),
                 PreconditionError);
  }
  EXPECT_NO_THROW(
      net.reliableBroadcast(BroadcastScheme::kCff, source, 1, opts));
}

TEST(ArenaTest, InFlightEngineRejectsNonSlottedSchemes) {
  const SensorNetwork net(paperNetwork(60, 0xA4E7A13));
  const NodeId source = net.clusterNet().root();
  ProtocolOptions opts;
  for (const BroadcastScheme scheme :
       {BroadcastScheme::kDfo, BroadcastScheme::kGossip,
        BroadcastScheme::kCounter}) {
    SCOPED_TRACE(toString(scheme));
    EXPECT_THROW(
        InFlightBroadcast(net.clusterNet(), scheme, source, 1, opts),
        PreconditionError);
  }
}

TEST(ArenaTest, DistanceBroadcastRequiresPositions) {
  // Direct graph callers must supply ProtocolOptions::nodePositions;
  // SensorNetwork::broadcast fills them automatically (tested above).
  const SensorNetwork net(paperNetwork(60, 0xA4E7A14));
  DistanceConfig dc;
  ProtocolOptions bare;
  EXPECT_THROW(runDistanceBroadcast(net.graph(), net.clusterNet().root(), 1,
                                    dc, bare),
               PreconditionError);
}

}  // namespace
}  // namespace dsn
