// Robustness comparison (§3.3 "Robustness"): CFF degrades gracefully
// under failures; the DFO tour collapses.
#include <gtest/gtest.h>

#include "broadcast/runner.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

using testutil::randomNet;

TEST(RobustnessTest, DropProbabilityHurtsDfoMoreThanCff) {
  double dfoCoverage = 0.0;
  double cffCoverage = 0.0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    auto f = randomNet(801 + static_cast<std::uint64_t>(t), 150);
    ProtocolOptions opts;
    opts.dropProbability = 0.05;
    opts.failureSeed = 900 + static_cast<std::uint64_t>(t);
    dfoCoverage += runBroadcast(BroadcastScheme::kDfo, *f.net,
                                f.net->root(), 1, opts)
                       .coverage();
    cffCoverage += runBroadcast(BroadcastScheme::kImprovedCff, *f.net,
                                f.net->root(), 1, opts)
                       .coverage();
  }
  dfoCoverage /= trials;
  cffCoverage /= trials;
  // With ~60+ backbone transmissions at 5% drop, a DFO tour almost surely
  // loses its token part-way; CFF only loses isolated branches.
  EXPECT_GT(cffCoverage, dfoCoverage + 0.05);
  EXPECT_GT(cffCoverage, 0.6);
}

TEST(RobustnessTest, SingleDeathNeverStopsCffRoot) {
  auto f = randomNet(811, 200);
  // Kill any one pure member: broadcast must reach everyone else.
  const auto members = f.net->pureMembers();
  ASSERT_FALSE(members.empty());
  ProtocolOptions opts;
  opts.deaths.emplace_back(members.front(), 0);
  const auto run = runBroadcast(BroadcastScheme::kImprovedCff, *f.net,
                                f.net->root(), 1, opts);
  EXPECT_EQ(run.delivered, run.intended - 1);  // only the dead one misses
}

TEST(RobustnessTest, CffCoverageMonotoneInDropRate) {
  auto f = randomNet(821, 200);
  double last = 1.1;
  for (double p : {0.0, 0.1, 0.4}) {
    ProtocolOptions opts;
    opts.dropProbability = p;
    opts.failureSeed = 7;
    const double cov = runBroadcast(BroadcastScheme::kImprovedCff, *f.net,
                                    f.net->root(), 1, opts)
                           .coverage();
    EXPECT_LE(cov, last + 0.02) << "p=" << p;  // allow tiny RNG noise
    last = cov;
  }
}

TEST(RobustnessTest, ZeroDropEqualsFailureFreeRun) {
  auto f = randomNet(831, 150);
  ProtocolOptions opts;
  opts.dropProbability = 0.0;
  const auto a = runBroadcast(BroadcastScheme::kCff, *f.net,
                              f.net->root(), 1, opts);
  EXPECT_TRUE(a.allDelivered());
  EXPECT_EQ(a.sim.droppedTransmissions, 0u);
}

TEST(RobustnessTest, DfoSurvivesLeafMemberDeaths) {
  // Deaths of pure members never break the tour (they are not relays).
  auto f = randomNet(841, 150);
  ProtocolOptions opts;
  int killed = 0;
  for (NodeId v : f.net->pureMembers()) {
    opts.deaths.emplace_back(v, 0);
    if (++killed == 5) break;
  }
  ASSERT_EQ(killed, 5);
  const auto run = runBroadcast(BroadcastScheme::kDfo, *f.net,
                                f.net->root(), 1, opts);
  EXPECT_EQ(run.delivered, run.intended - 5);
}

}  // namespace
}  // namespace dsn
