// Model-based testing: an independent TDM oracle predicts, straight from
// the ClusterNet structure and the paper's window rules, exactly which
// nodes receive the payload — and the radio simulation must agree
// node-for-node. This cross-checks protocol state machines, the channel
// collision rule, and the slot machinery against one another.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "broadcast/cff_flooding.hpp"
#include "broadcast/improved_cff.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

using testutil::randomNet;

/// Predicts the delivery set of Algorithm 1 (single channel) from first
/// principles: depth-by-depth windows; in window i every payload-holding
/// backbone node of depth i with a u-slot transmits at its slot; a node
/// at depth i+1 receives iff exactly one of its graph neighbors among
/// those transmitters uses some slot.
std::set<NodeId> predictCffDelivery(const ClusterNet& net, NodeId source) {
  std::set<NodeId> has;
  // Source + root path.
  for (NodeId v = source; v != kInvalidNode; v = net.parent(v))
    has.insert(v);

  const Graph& g = net.graph();
  for (Depth i = 0; i <= net.height(); ++i) {
    // Transmitters of window i.
    std::vector<NodeId> tx;
    for (NodeId v : net.backboneNodes())
      if (net.depth(v) == i && net.uSlot(v) != kNoSlot && has.count(v))
        tx.push_back(v);
    // Receivers at depth i+1.
    std::set<NodeId> gained;
    for (NodeId v : net.netNodes()) {
      if (net.depth(v) != i + 1 || has.count(v)) continue;
      std::map<TimeSlot, int> bySlot;
      for (NodeId u : g.neighbors(v)) {
        if (std::find(tx.begin(), tx.end(), u) != tx.end())
          ++bySlot[net.uSlot(u)];
      }
      for (const auto& [slot, count] : bySlot) {
        if (count == 1) {
          gained.insert(v);
          break;
        }
      }
    }
    has.insert(gained.begin(), gained.end());
  }
  return has;
}

/// Same oracle for Algorithm 2: backbone windows with b-slots, then one
/// shared leaf window with l-slots.
std::set<NodeId> predictIcffDelivery(const ClusterNet& net,
                                     NodeId source) {
  std::set<NodeId> has;
  for (NodeId v = source; v != kInvalidNode; v = net.parent(v))
    has.insert(v);

  const Graph& g = net.graph();
  int backboneHeight = 0;
  for (NodeId v : net.backboneNodes())
    backboneHeight =
        std::max(backboneHeight, static_cast<int>(net.depth(v)));

  // Step 1: backbone flood.
  for (int i = 0; i <= backboneHeight; ++i) {
    std::vector<NodeId> tx;
    for (NodeId v : net.backboneNodes())
      if (net.depth(v) == i && net.bSlot(v) != kNoSlot && has.count(v))
        tx.push_back(v);
    std::set<NodeId> gained;
    for (NodeId v : net.backboneNodes()) {
      if (net.depth(v) != i + 1 || has.count(v)) continue;
      std::map<TimeSlot, int> bySlot;
      for (NodeId u : g.neighbors(v))
        if (std::find(tx.begin(), tx.end(), u) != tx.end())
          ++bySlot[net.bSlot(u)];
      for (const auto& [slot, count] : bySlot)
        if (count == 1) {
          gained.insert(v);
          break;
        }
    }
    has.insert(gained.begin(), gained.end());
  }

  // Step 2: every payload-holding backbone node transmits at its l-slot
  // in one shared window; pure members listen.
  std::vector<NodeId> tx;
  for (NodeId v : net.backboneNodes())
    if (net.lSlot(v) != kNoSlot && has.count(v)) tx.push_back(v);
  for (NodeId v : net.pureMembers()) {
    if (has.count(v)) continue;
    std::map<TimeSlot, int> bySlot;
    for (NodeId u : g.neighbors(v))
      if (std::find(tx.begin(), tx.end(), u) != tx.end())
        ++bySlot[net.lSlot(u)];
    for (const auto& [slot, count] : bySlot)
      if (count == 1) {
        has.insert(v);
        break;
      }
  }
  return has;
}

class OracleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleSweep, CffSimulationMatchesOracle) {
  const auto seed = GetParam();
  auto f = randomNet(seed, 150);
  Rng rng(seed);
  const auto nodes = f.net->netNodes();
  const NodeId source = nodes[rng.pickIndex(nodes)];

  const auto predicted = predictCffDelivery(*f.net, source);
  const auto run = runCffBroadcast(*f.net, source, 42);
  for (NodeId v : nodes) {
    const bool got = run.deliveryRound[v] >= 0;
    EXPECT_EQ(got, predicted.count(v) != 0)
        << "node " << v << " seed " << seed;
  }
}

TEST_P(OracleSweep, IcffSimulationMatchesOracle) {
  const auto seed = GetParam();
  auto f = randomNet(seed ^ 0xFF, 150);
  Rng rng(seed);
  const auto nodes = f.net->netNodes();
  const NodeId source = nodes[rng.pickIndex(nodes)];

  const auto predicted = predictIcffDelivery(*f.net, source);
  const auto run = runImprovedCffBroadcast(*f.net, source, 42);
  for (NodeId v : nodes) {
    const bool got = run.deliveryRound[v] >= 0;
    EXPECT_EQ(got, predicted.count(v) != 0)
        << "node " << v << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleSweep,
                         ::testing::Values(901u, 902u, 903u, 904u, 905u,
                                           906u, 907u, 908u));

// Under SlotPolicy::kPaperLocal the oracle (which models the actual
// shared leaf window) may predict misses where Condition 2's literal
// reading claimed safety — the simulation must agree with the oracle,
// not with the paper's optimistic claim.
TEST(OracleTest, PaperLocalPolicyMatchesOracleEvenWhenLossy) {
  ClusterNetConfig cfg;
  cfg.slotPolicy = SlotPolicy::kPaperLocal;
  int totalMisses = 0;
  for (std::uint64_t seed : {911u, 912u, 913u, 914u}) {
    auto f = randomNet(seed, 200, 8, 60.0, cfg);
    const NodeId source = f.net->root();
    const auto predicted = predictIcffDelivery(*f.net, source);
    const auto run = runImprovedCffBroadcast(*f.net, source, 42);
    for (NodeId v : f.net->netNodes()) {
      const bool got = run.deliveryRound[v] >= 0;
      EXPECT_EQ(got, predicted.count(v) != 0) << "node " << v;
      if (!got) ++totalMisses;
    }
  }
  // Whether misses occur depends on the topology draw; the invariant is
  // oracle/simulation agreement, checked above. totalMisses is reported
  // for information only.
  RecordProperty("paper_local_misses", totalMisses);
}

}  // namespace
}  // namespace dsn
