// Schedule-level properties checked with the per-node instrumentation:
// delivery ordering by depth, per-role radio usage, and the paper's
// "members sleep through the backbone flood" design goal.
#include <gtest/gtest.h>

#include "broadcast/cff_flooding.hpp"
#include "broadcast/dfo.hpp"
#include "broadcast/improved_cff.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

using testutil::randomNet;

TEST(ScheduleTest, CffDeliversStrictlyByDepthWindows) {
  auto f = randomNet(7001, 150);
  const auto& net = *f.net;
  const auto run = runCffBroadcast(net, net.root(), 1);
  ASSERT_TRUE(run.allDelivered());
  // A node at depth j receives within window j-1: its delivery round is
  // strictly smaller than that of any node at depth j+2 (windows are
  // disjoint).
  for (NodeId a : net.netNodes()) {
    for (NodeId b : net.netNodes()) {
      if (net.depth(b) >= net.depth(a) + 2) {
        EXPECT_LT(run.deliveryRound[a], run.deliveryRound[b])
            << "a=" << a << " b=" << b;
      }
    }
  }
}

TEST(ScheduleTest, IcffMembersReceiveAfterEveryBackboneNode) {
  auto f = randomNet(7002, 150);
  const auto& net = *f.net;
  const auto run = runImprovedCffBroadcast(net, net.root(), 1);
  ASSERT_TRUE(run.allDelivered());
  Round lastBackbone = -1;
  Round firstMember = std::numeric_limits<Round>::max();
  for (NodeId v : net.netNodes()) {
    if (net.isBackbone(v))
      lastBackbone = std::max(lastBackbone, run.deliveryRound[v]);
    else
      firstMember = std::min(firstMember, run.deliveryRound[v]);
  }
  EXPECT_LT(lastBackbone, firstMember);
}

TEST(ScheduleTest, IcffRadioUsagePerRole) {
  auto f = randomNet(7003, 200);
  const auto& net = *f.net;
  const auto run = runImprovedCffBroadcast(net, net.root(), 1);
  ASSERT_TRUE(run.allDelivered());
  const auto bWin = static_cast<std::uint32_t>(net.rootMaxBSlot());
  const auto lWin = static_cast<std::uint32_t>(net.rootMaxLSlot());
  for (NodeId v : net.netNodes()) {
    if (net.status(v) == NodeStatus::kPureMember) {
      // Members never transmit and listen only inside the leaf window.
      EXPECT_EQ(run.transmitRounds[v], 0u) << v;
      EXPECT_LE(run.listenRounds[v], lWin) << v;
    } else {
      // Backbone: at most one b- and one l-transmission; listening
      // bounded by its backbone receive window.
      EXPECT_LE(run.transmitRounds[v], 2u) << v;
      EXPECT_LE(run.listenRounds[v], std::max(bWin, 1u)) << v;
    }
  }
}

TEST(ScheduleTest, DfoEveryoneListensUntilServed) {
  auto f = randomNet(7004, 120);
  const auto& net = *f.net;
  const auto run = runDfoBroadcast(net, net.root(), 1);
  ASSERT_TRUE(run.allDelivered());
  for (NodeId v : net.netNodes()) {
    if (net.status(v) != NodeStatus::kPureMember) continue;
    if (v == net.root()) continue;
    // A member listens exactly until its first delivery round.
    EXPECT_EQ(static_cast<Round>(run.listenRounds[v]),
              run.deliveryRound[v] + 1)
        << v;
  }
}

TEST(ScheduleTest, DfoTransmissionsMatchTourDegrees) {
  auto f = randomNet(7005, 100);
  const auto& net = *f.net;
  const auto run = runDfoBroadcast(net, net.root(), 1);
  ASSERT_TRUE(run.allDelivered());
  // Each backbone node transmits once per BT tree edge it owns (the
  // Eulerian property): degree-in-BT times, except the start which
  // skips the final hand-back.
  for (NodeId v : net.backboneNodes()) {
    std::uint32_t btDegree = v == net.root() ? 0u : 1u;
    for (NodeId c : net.children(v))
      if (net.isBackbone(c)) ++btDegree;
    if (v == net.root()) {
      EXPECT_EQ(run.transmitRounds[v], std::max(btDegree, 1u)) << v;
    } else {
      EXPECT_EQ(run.transmitRounds[v], btDegree) << v;
    }
  }
  // Total = 2 * (|BT| - 1) for a tour from the root.
  const std::size_t bt = net.backboneNodes().size();
  EXPECT_EQ(run.transmissions, 2 * (bt - 1));
}

TEST(ScheduleTest, SourcePathPrefixShiftsEverything) {
  auto f = randomNet(7006, 120);
  const auto& net = *f.net;
  NodeId deep = net.root();
  for (NodeId v : net.netNodes())
    if (net.depth(v) > net.depth(deep)) deep = v;
  const auto fromRoot = runImprovedCffBroadcast(net, net.root(), 1);
  const auto fromDeep = runImprovedCffBroadcast(net, deep, 1);
  ASSERT_TRUE(fromRoot.allDelivered());
  ASSERT_TRUE(fromDeep.allDelivered());
  EXPECT_EQ(fromDeep.scheduleLength,
            fromRoot.scheduleLength + net.depth(deep));
}

}  // namespace
}  // namespace dsn
