// Property tests for the GF(2^8) field and the online RLNC decoder.
// The field axioms run over every element (the field is small enough to
// enumerate); the decoder properties run over randomized coefficient
// matrices — rank invariants, span rejection, and the decode round-trip
// that the RLNC decode-completeness oracle ultimately rests on.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "broadcast/gf256.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dsn::gf256 {
namespace {

TEST(Gf256Test, MultiplicationGroupAxioms) {
  // Exhaustive over all 256x256 products: commutativity, identity, and
  // the inverse law on the 255 nonzero elements.
  for (int a = 0; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(mul(ua, 1), ua);
    EXPECT_EQ(mul(1, ua), ua);
    EXPECT_EQ(mul(ua, 0), 0);
    for (int b = a; b < 256; ++b) {
      const auto ub = static_cast<std::uint8_t>(b);
      EXPECT_EQ(mul(ua, ub), mul(ub, ua));
    }
    if (a != 0) {
      EXPECT_EQ(mul(ua, inv(ua)), 1) << "a=" << a;
    }
  }
}

TEST(Gf256Test, MultiplicationAssociativeAndDistributiveSampled) {
  // The full triple product space is 2^24; a seeded sample is plenty to
  // catch a bad table (any error corrupts a constant fraction of it).
  Rng rng(0x6F256);
  for (int i = 0; i < 20'000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform(256));
    const auto c = static_cast<std::uint8_t>(rng.uniform(256));
    EXPECT_EQ(mul(mul(a, b), c), mul(a, mul(b, c)));
    EXPECT_EQ(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
  }
}

TEST(Gf256Test, GeneratorHasFullOrder) {
  // The log/exp tables assume 3 generates the whole multiplicative
  // group: its powers must visit all 255 nonzero elements.
  std::array<bool, 256> seen{};
  std::uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    EXPECT_FALSE(seen[x]) << "power " << i << " repeats";
    seen[x] = true;
    x = mul(x, 3);
  }
  EXPECT_EQ(x, 1);  // order exactly 255
}

TEST(Gf256Test, ZeroHasNoInverse) {
  EXPECT_THROW(inv(0), PreconditionError);
}

TEST(Gf256Test, ScaleSymbolIsBytewiseMul) {
  Rng rng(0x5CA1E);
  for (int i = 0; i < 2'000; ++i) {
    const std::uint64_t s = rng.next();
    const auto c = static_cast<std::uint8_t>(rng.uniform(256));
    const std::uint64_t scaled = scaleSymbol(s, c);
    for (int b = 0; b < 8; ++b) {
      const auto sb = static_cast<std::uint8_t>((s >> (8 * b)) & 0xFF);
      EXPECT_EQ(static_cast<std::uint8_t>((scaled >> (8 * b)) & 0xFF),
                mul(sb, c));
    }
  }
}

CoefRow randomRow(Rng& rng, int generation) {
  CoefRow row{};
  for (int j = 0; j < generation; ++j)
    row[static_cast<std::size_t>(j)] =
        static_cast<std::uint8_t>(rng.uniform(256));
  return row;
}

TEST(Gf256Test, DecoderRankInvariants) {
  Rng rng(0xDEC0DE);
  for (int trial = 0; trial < 200; ++trial) {
    const int generation = 1 + static_cast<int>(rng.uniform(kMaxGeneration));
    Decoder dec(generation);
    int inserts = 0;
    while (!dec.complete() && inserts < 64) {
      const int before = dec.rank();
      const bool innovative = dec.insert(randomRow(rng, generation), rng.next());
      ++inserts;
      EXPECT_EQ(dec.rank(), before + (innovative ? 1 : 0));
      EXPECT_LE(dec.rank(), generation);
      EXPECT_LE(dec.rank(), inserts);
    }
    ASSERT_TRUE(dec.complete()) << "64 random rows failed to reach rank "
                                << generation;
    // At full rank every further row is in the span by definition.
    for (int i = 0; i < 8; ++i)
      EXPECT_FALSE(dec.insert(randomRow(rng, generation), rng.next()));
  }
}

TEST(Gf256Test, DecoderRejectsSpanOfPriorRows) {
  // Feed a row that is an explicit random combination of already
  // inserted rows (tracked outside the decoder): never innovative.
  Rng rng(0x5BA2);
  for (int trial = 0; trial < 100; ++trial) {
    const int generation = 2 + static_cast<int>(rng.uniform(kMaxGeneration - 1));
    Decoder dec(generation);
    std::vector<CoefRow> sent;
    std::vector<std::uint64_t> sentSymbols;
    while (dec.rank() < generation - 1) {
      const CoefRow row = randomRow(rng, generation);
      const std::uint64_t symbol = rng.next();
      if (dec.insert(row, symbol)) {
        sent.push_back(row);
        sentSymbols.push_back(symbol);
      }
    }
    CoefRow combo{};
    std::uint64_t comboSymbol = 0;
    for (std::size_t r = 0; r < sent.size(); ++r) {
      const auto w = static_cast<std::uint8_t>(rng.uniform(256));
      for (int j = 0; j < generation; ++j)
        combo[static_cast<std::size_t>(j)] = add(
            combo[static_cast<std::size_t>(j)],
            mul(sent[r][static_cast<std::size_t>(j)], w));
      comboSymbol ^= scaleSymbol(sentSymbols[r], w);
    }
    EXPECT_FALSE(dec.insert(combo, comboSymbol)) << "trial " << trial;
  }
}

TEST(Gf256Test, DecodeRoundTripsRandomEncodings) {
  // Encode random source symbols with random full-rank coefficient
  // draws — exactly what the RLNC relays do — and require solve() to
  // recover the sources bit-exactly.
  Rng rng(0x2077);
  for (int trial = 0; trial < 200; ++trial) {
    const int generation = 1 + static_cast<int>(rng.uniform(kMaxGeneration));
    std::array<std::uint64_t, kMaxGeneration> source{};
    for (int i = 0; i < generation; ++i)
      source[static_cast<std::size_t>(i)] = rng.next();

    Decoder dec(generation);
    int packets = 0;
    while (!dec.complete() && packets < 96) {
      const CoefRow coef = randomRow(rng, generation);
      std::uint64_t symbol = 0;
      for (int j = 0; j < generation; ++j)
        symbol ^= scaleSymbol(source[static_cast<std::size_t>(j)],
                              coef[static_cast<std::size_t>(j)]);
      dec.insert(coef, symbol);
      ++packets;
    }
    ASSERT_TRUE(dec.complete());

    std::array<std::uint64_t, kMaxGeneration> out{};
    dec.solve(out);
    for (int i = 0; i < generation; ++i)
      EXPECT_EQ(out[static_cast<std::size_t>(i)],
                source[static_cast<std::size_t>(i)])
          << "trial " << trial << " symbol " << i;
  }
}

TEST(Gf256Test, SolveBeforeFullRankThrows) {
  Decoder dec(4);
  CoefRow row{};
  row[0] = 1;
  dec.insert(row, 42);
  std::array<std::uint64_t, kMaxGeneration> out{};
  EXPECT_THROW(dec.solve(out), PreconditionError);
}

}  // namespace
}  // namespace dsn::gf256
