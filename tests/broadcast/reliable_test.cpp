// Reliable broadcast (NACK repair rounds over CFF/iCFF, DESIGN.md §10).
#include "broadcast/reliable.hpp"

#include <gtest/gtest.h>

#include "core/sensor_network.hpp"

namespace dsn {
namespace {

NetworkConfig config(std::uint64_t seed, std::size_t n = 100) {
  NetworkConfig cfg;
  cfg.nodeCount = n;
  cfg.seed = seed;
  return cfg;
}

TEST(ReliableBroadcastTest, CleanChannelNeedsNoRepair) {
  SensorNetwork net(config(41));
  const NodeId source = net.clusterNet().root();
  const auto run =
      net.reliableBroadcast(BroadcastScheme::kImprovedCff, source, 7);
  EXPECT_TRUE(run.allDelivered());
  EXPECT_EQ(run.repairRoundsUsed, 0);
  EXPECT_EQ(run.nacksSent, 0u);
  EXPECT_EQ(run.retransmissions, 0u);
  EXPECT_EQ(run.totalRounds, run.wave.sim.rounds);
  EXPECT_DOUBLE_EQ(run.coverage(), 1.0);
}

TEST(ReliableBroadcastTest, RejectsDfoAndBadOptions) {
  SensorNetwork net(config(42, 30));
  const NodeId source = net.clusterNet().root();
  EXPECT_THROW(
      net.reliableBroadcast(BroadcastScheme::kDfo, source, 1),
      PreconditionError);
  ReliableOptions bad;
  bad.maxRepairRounds = -1;
  EXPECT_THROW(
      net.reliableBroadcast(BroadcastScheme::kImprovedCff, source, 1, bad),
      PreconditionError);
  bad.maxRepairRounds = 4;
  bad.responderKeepProbability = 0.0;
  EXPECT_THROW(
      net.reliableBroadcast(BroadcastScheme::kImprovedCff, source, 1, bad),
      PreconditionError);
}

TEST(ReliableBroadcastTest, RepairBeatsPlainWaveUnderDrops) {
  SensorNetwork net(config(43, 150));
  const NodeId source = net.clusterNet().root();
  ReliableOptions ro;
  ro.base.dropProbability = 0.2;
  ro.base.failureSeed = 0x10ADED;
  ro.maxRepairRounds = 30;
  const auto run = net.reliableBroadcast(BroadcastScheme::kImprovedCff,
                                         source, 7, ro);
  EXPECT_GE(run.coverage(), run.wave.coverage());
  EXPECT_TRUE(run.allDelivered())
      << "residual uncovered: " << run.residualUncovered;
  if (run.repairRoundsUsed > 0) {
    EXPECT_GT(run.nacksSent, 0u);
    EXPECT_GT(run.retransmissions, 0u);
  }
}

TEST(ReliableBroadcastTest, ZeroBudgetEqualsPlainWave) {
  SensorNetwork net(config(44, 120));
  const NodeId source = net.clusterNet().root();
  ProtocolOptions plainOpts;
  plainOpts.dropProbability = 0.2;
  plainOpts.failureSeed = 0xCAFE;
  const auto plain = net.broadcast(BroadcastScheme::kImprovedCff, source,
                                   7, plainOpts);
  ReliableOptions ro;
  ro.base = plainOpts;
  ro.maxRepairRounds = 0;
  const auto run = net.reliableBroadcast(BroadcastScheme::kImprovedCff,
                                         source, 7, ro);
  EXPECT_EQ(run.repairRoundsUsed, 0);
  EXPECT_EQ(run.delivered, plain.delivered);
  EXPECT_EQ(run.totalRounds, plain.sim.rounds);
}

TEST(ReliableBroadcastTest, DeliveryRoundsAreMonotoneAcrossRepairs) {
  SensorNetwork net(config(45, 120));
  const NodeId source = net.clusterNet().root();
  ReliableOptions ro;
  ro.base.dropProbability = 0.25;
  ro.base.failureSeed = 0x5EED;
  ro.maxRepairRounds = 20;
  const auto run = net.reliableBroadcast(BroadcastScheme::kImprovedCff,
                                         source, 7, ro);
  // Nodes repaired in round k got the payload strictly after the wave
  // finished; everyone delivered within the combined timeline.
  for (NodeId v : net.clusterNet().netNodes()) {
    const Round r = run.deliveryRound[v];
    if (r < 0) continue;
    EXPECT_LT(r, run.totalRounds);
    if (run.wave.deliveryRound[v] < 0) {
      EXPECT_GE(r, run.wave.sim.rounds);
    }
  }
}

TEST(ReliableBroadcastTest, DeterministicGivenSeed) {
  const auto once = [] {
    SensorNetwork net(config(46, 120));
    ReliableOptions ro;
    ro.base.dropProbability = 0.3;
    ro.base.failureSeed = 0xABBA;
    ro.maxRepairRounds = 10;
    return net.reliableBroadcast(BroadcastScheme::kImprovedCff,
                                 net.clusterNet().root(), 7, ro);
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.totalRounds, b.totalRounds);
  EXPECT_EQ(a.nacksSent, b.nacksSent);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.deliveryRound, b.deliveryRound);
}

TEST(ReliableBroadcastTest, WorksOnPlainCffToo) {
  SensorNetwork net(config(47, 100));
  ReliableOptions ro;
  ro.base.dropProbability = 0.2;
  ro.base.failureSeed = 0xF1F1;
  ro.maxRepairRounds = 30;
  const auto run = net.reliableBroadcast(
      BroadcastScheme::kCff, net.clusterNet().root(), 7, ro);
  EXPECT_TRUE(run.allDelivered())
      << "residual uncovered: " << run.residualUncovered;
}

}  // namespace
}  // namespace dsn
