// The multicast relay-pruning soundness gap (DESIGN.md §4(4)) — a frozen
// concrete instance.
//
// Paper §3.4 claims the broadcast "can be readily modified" into a
// multicast by pruning transmissions to relay-list holders. But the
// Time-Slot Conditions were established for the FULL transmitter set:
// a leaf's guaranteed collision-free provider can be a backbone node
// whose subtree contains no group member. Pruning silences exactly that
// provider and the leaf starves — while the leaf's own parent may never
// even have acquired an l-slot (its children were provably covered by
// the now-pruned neighbor).
//
// Deployment seed 1 with membership draw seed 1 exhibits the gap at
// node 130; the structure of the counterexample is asserted explicitly
// so a future "fix" that silently changes the draw fails loudly.
#include <gtest/gtest.h>

#include "core/sensor_network.hpp"

namespace dsn {
namespace {

constexpr GroupId kGroup = 1;

class PruningGapTest : public ::testing::Test {
 protected:
  PruningGapTest() {
    NetworkConfig cfg;
    cfg.nodeCount = 150;
    cfg.seed = 1;
    net_ = std::make_unique<SensorNetwork>(cfg);
    Rng rng(1);
    for (NodeId v : net_->clusterNet().netNodes())
      if (rng.chance(0.25)) net_->joinGroup(v, kGroup);
  }
  std::unique_ptr<SensorNetwork> net_;
};

TEST_F(PruningGapTest, LiteralPruningStarvesAMember) {
  const auto pruned = net_->multicast(net_->clusterNet().root(), kGroup,
                                      1, MulticastMode::kPrunedRelay);
  EXPECT_FALSE(pruned.allDelivered());
  EXPECT_EQ(pruned.intended - pruned.delivered, 1u);
  EXPECT_LT(pruned.deliveryRound[130], 0);  // the starved member
}

TEST_F(PruningGapTest, FullFloodServesTheSameMember) {
  const auto flood = net_->multicast(net_->clusterNet().root(), kGroup, 1,
                                     MulticastMode::kFullFlood);
  EXPECT_TRUE(flood.allDelivered());
  EXPECT_GE(flood.deliveryRound[130], 0);
}

TEST_F(PruningGapTest, CounterexampleStructureIsAsDocumented) {
  const auto& cn = net_->clusterNet();
  const NodeId starved = 130;
  ASSERT_TRUE(cn.contains(starved));
  ASSERT_EQ(cn.status(starved), NodeStatus::kPureMember);
  ASSERT_TRUE(cn.inGroup(starved, kGroup));

  // Exactly one interferer holds an l-slot (the guaranteed provider)...
  NodeId provider = kInvalidNode;
  for (NodeId u : cn.lInterferers(starved)) {
    if (cn.lSlot(u) != kNoSlot) {
      ASSERT_EQ(provider, kInvalidNode) << "expected a single provider";
      provider = u;
    }
  }
  ASSERT_NE(provider, kInvalidNode);
  // ...and that provider is not on the group's relay tree,
  EXPECT_FALSE(cn.relaysGroup(provider, kGroup));
  EXPECT_FALSE(cn.inGroup(provider, kGroup));
  // ...while the member's own parent relays but owns no l-slot (it never
  // needed one — the provider's slot covered its children).
  const NodeId parent = cn.parent(starved);
  EXPECT_TRUE(cn.relaysGroup(parent, kGroup));
  EXPECT_EQ(cn.lSlot(parent), kNoSlot);
}

TEST_F(PruningGapTest, GapRateStaysSmall) {
  // Across fresh draws the per-member miss rate stays low — the gap is
  // real but rare, which is presumably why the paper never noticed.
  std::size_t intended = 0, missed = 0;
  for (std::uint64_t seed : {2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    NetworkConfig cfg;
    cfg.nodeCount = 150;
    cfg.seed = seed;
    SensorNetwork net(cfg);
    Rng rng(seed);
    for (NodeId v : net.clusterNet().netNodes())
      if (rng.chance(0.25)) net.joinGroup(v, kGroup);
    const auto run = net.multicast(net.clusterNet().root(), kGroup, 1,
                                   MulticastMode::kPrunedRelay);
    intended += run.intended;
    missed += run.intended - run.delivered;
  }
  ASSERT_GT(intended, 0u);
  EXPECT_LT(static_cast<double>(missed) / static_cast<double>(intended),
            0.03);
}

}  // namespace
}  // namespace dsn
