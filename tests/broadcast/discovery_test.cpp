// Randomized neighbor discovery (the [19] attach handshake): full
// discovery with high probability, O(d) expected rounds.
#include <gtest/gtest.h>

#include "broadcast/neighbor_discovery.hpp"
#include "graph/deploy.hpp"
#include "graph/unit_disk.hpp"
#include "util/rng.hpp"

namespace dsn {
namespace {

Graph starGraph(std::size_t leaves) {
  Graph g(leaves + 1);
  for (NodeId v = 1; v <= leaves; ++v) g.addEdge(0, v);
  return g;
}

TEST(DiscoveryTest, SingleNeighbor) {
  Graph g(2);
  g.addEdge(0, 1);
  const auto result = runNeighborDiscovery(g, 0);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.discovered, std::vector<NodeId>{1});
  // One fruitful cycle + the silent-streak termination tail.
  EXPECT_LT(result.rounds, 300);
}

TEST(DiscoveryTest, IsolatedJoinerFinishesEmpty) {
  Graph g(2);  // no edges
  const auto result = runNeighborDiscovery(g, 0);
  EXPECT_TRUE(result.complete);  // vacuously
  EXPECT_TRUE(result.discovered.empty());
  // Doubles the window up to the no-one-out-there cutoff, then stops.
  EXPECT_LT(result.rounds, 300);
}

class DiscoverySweep
    : public ::testing::TestWithParam<std::pair<std::size_t, int>> {};

TEST_P(DiscoverySweep, DiscoversAllNeighbors) {
  const auto [degree, seed] = GetParam();
  Graph g = starGraph(degree);
  DiscoveryConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(seed);
  const auto result = runNeighborDiscovery(g, 0, cfg);
  EXPECT_TRUE(result.complete)
      << "degree " << degree << " seed " << seed << " found "
      << result.discovered.size();
  EXPECT_EQ(result.discovered.size(), degree);
}

INSTANTIATE_TEST_SUITE_P(
    DegreesAndSeeds, DiscoverySweep,
    ::testing::Values(std::make_pair(std::size_t{2}, 1),
                      std::make_pair(std::size_t{5}, 2),
                      std::make_pair(std::size_t{10}, 3),
                      std::make_pair(std::size_t{25}, 4),
                      std::make_pair(std::size_t{50}, 5),
                      std::make_pair(std::size_t{50}, 6)));

TEST(DiscoveryTest, RoundsScaleRoughlyLinearlyWithDegree) {
  // The paper's attach assumption: O(d_new) expected rounds. Average a
  // few seeds and check rounds/degree stays within a sane constant.
  for (std::size_t degree : {8u, 32u}) {
    double total = 0;
    const int trials = 5;
    for (int t = 0; t < trials; ++t) {
      Graph g = starGraph(degree);
      DiscoveryConfig cfg;
      cfg.seed = 100u + static_cast<std::uint64_t>(t);
      const auto result = runNeighborDiscovery(g, 0, cfg);
      ASSERT_TRUE(result.complete);
      total += static_cast<double>(result.rounds);
    }
    // O(d) slope plus an additive termination tail (~130 rounds): the
    // per-neighbor cost must stay bounded once the tail is amortized.
    const double tail = 140.0;
    const double perNeighbor =
        (total / trials - tail) / static_cast<double>(degree);
    EXPECT_LT(perNeighbor, 20.0) << "degree " << degree;
  }
}

TEST(DiscoveryTest, WorksInsideADeployment) {
  Rng rng(77);
  const auto pts =
      deployIncrementalAttach({Field::squareUnits(6), 60.0, 120}, rng);
  const Graph g = buildUnitDiskGraph(pts, 60.0);
  // Discover from the busiest node.
  NodeId busiest = 0;
  for (NodeId v = 1; v < g.size(); ++v)
    if (g.degree(v) > g.degree(busiest)) busiest = v;
  const auto result = runNeighborDiscovery(g, busiest);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.discovered.size(), g.degree(busiest));
}

TEST(DiscoveryTest, DeterministicGivenSeed) {
  Graph g = starGraph(12);
  DiscoveryConfig cfg;
  cfg.seed = 9;
  const auto a = runNeighborDiscovery(g, 0, cfg);
  const auto b = runNeighborDiscovery(g, 0, cfg);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.discovered, b.discovered);
}

TEST(DiscoveryTest, InvalidConfigRejected) {
  Graph g(2);
  g.addEdge(0, 1);
  DiscoveryConfig cfg;
  cfg.initialWindow = 0;
  EXPECT_THROW(runNeighborDiscovery(g, 0, cfg), PreconditionError);
}

}  // namespace
}  // namespace dsn
