// InFlightBroadcast: resumable CFF/iCFF waves over a reconfiguring
// network (DESIGN.md §15).
//
// The two load-bearing contracts:
//   1. Segmenting alone changes nothing — a wave advanced in arbitrary
//      chunks (with no topology mutation between them) is bit-identical
//      to the one-shot runner, per scheme and per scheduling mode.
//   2. Mid-wave reconfiguration is scheduler-invariant — the same
//      interleaved move/crash/join program produces the same finish
//      report and per-node delivery set at every thread count.
#include <gtest/gtest.h>

#include <vector>

#include "broadcast/inflight.hpp"
#include "broadcast/runner.hpp"
#include "core/sensor_network.hpp"
#include "util/error.hpp"

namespace dsn {
namespace {

constexpr std::uint64_t kPayload = 0xFEED;

NetworkConfig paperNetwork(std::size_t n, std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.nodeCount = n;
  cfg.seed = seed;
  return cfg;
}

ProtocolOptions shardedOptions(const SensorNetwork& net, int threads) {
  ProtocolOptions opts;
  opts.threads = threads;
  opts.shardSerialThreshold = 0;  // force the parallel tile path
  if (threads > 0) {
    opts.nodePositions.resize(net.graph().size());
    for (NodeId v = 0; v < net.graph().size(); ++v)
      if (net.index().contains(v)) opts.nodePositions[v] = net.index().position(v);
    opts.tileMinEdge = net.range();
  }
  return opts;
}

void expectSameReport(const InFlightReport& a, const InFlightReport& b) {
  EXPECT_EQ(a.sim.rounds, b.sim.rounds);
  EXPECT_EQ(a.sim.totalTransmissions, b.sim.totalTransmissions);
  EXPECT_EQ(a.sim.totalDeliveries, b.sim.totalDeliveries);
  EXPECT_EQ(a.sim.totalCollisions, b.sim.totalCollisions);
  EXPECT_EQ(a.scheduleLength, b.scheduleLength);
  EXPECT_EQ(a.intended, b.intended);
  EXPECT_EQ(a.departed, b.departed);
  EXPECT_EQ(a.displaced, b.displaced);
  EXPECT_EQ(a.settled, b.settled);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.deliveredSettled, b.deliveredSettled);
  EXPECT_EQ(a.lastDeliveryRound, b.lastDeliveryRound);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.collisions, b.collisions);
}

TEST(InFlightBroadcastTest, SegmentedRunMatchesOneShotRunner) {
  const SensorNetwork net(paperNetwork(140, 0x1F117));
  const NodeId source = net.clusterNet().root();
  const ProtocolOptions opts;
  for (const BroadcastScheme scheme :
       {BroadcastScheme::kCff, BroadcastScheme::kImprovedCff}) {
    SCOPED_TRACE(toString(scheme));
    const BroadcastRun ref = net.broadcast(scheme, source, kPayload, opts);

    InFlightBroadcast wave(net.clusterNet(), scheme, source, kPayload, opts);
    EXPECT_FALSE(wave.finished());
    // Ragged segment sizes, deliberately not divisors of anything.
    for (Round stop = 3; !wave.finished(); stop += 7) wave.advanceTo(stop);
    const InFlightReport rep = wave.finish();

    EXPECT_EQ(rep.sim.rounds, ref.sim.rounds);
    EXPECT_EQ(rep.sim.totalTransmissions, ref.sim.totalTransmissions);
    EXPECT_EQ(rep.sim.totalDeliveries, ref.sim.totalDeliveries);
    EXPECT_EQ(rep.sim.totalCollisions, ref.sim.totalCollisions);
    EXPECT_EQ(rep.scheduleLength, ref.scheduleLength);
    EXPECT_EQ(rep.intended, ref.intended);
    EXPECT_EQ(rep.delivered, ref.delivered);
    EXPECT_EQ(rep.lastDeliveryRound, ref.lastDeliveryRound);
    // No mutation => nobody departed or displaced.
    EXPECT_EQ(rep.departed, 0u);
    EXPECT_EQ(rep.displaced, 0u);
    EXPECT_EQ(rep.settled, rep.intended);
    EXPECT_EQ(rep.deliveredSettled, rep.delivered);
    EXPECT_DOUBLE_EQ(rep.effectiveCoverage(), 1.0);
  }
}

TEST(InFlightBroadcastTest, TokenTourRejected) {
  const SensorNetwork net(paperNetwork(60, 0x1F118));
  EXPECT_THROW(InFlightBroadcast(net.clusterNet(), BroadcastScheme::kDfo,
                                 net.clusterNet().root(), kPayload, {}),
               PreconditionError);
}

TEST(InFlightBroadcastTest, CrashMidWaveCountsAsDeparted) {
  SensorNetwork net(paperNetwork(120, 0x1F119));
  const NodeId source = net.clusterNet().root();
  // A node far from the source so it is not the source itself.
  const NodeId victim = source == 5 ? 6 : 5;

  InFlightBroadcast wave(net.clusterNet(), BroadcastScheme::kImprovedCff,
                         source, kPayload, {});
  wave.advanceTo(2);
  net.crashSensor(victim);
  net.repairAfterFailures();
  wave.noteDisplaced(victim);
  wave.onTopologyChanged();
  wave.runToCompletion();

  const InFlightReport rep = wave.finish();
  EXPECT_EQ(rep.departed, 1u);  // dead beats displaced in the accounting
  EXPECT_EQ(rep.intended, rep.departed + rep.displaced + rep.settled);
}

TEST(InFlightBroadcastTest, MoveMidWaveCountsAsDisplaced) {
  SensorNetwork net(paperNetwork(120, 0x1F11A));
  const NodeId source = net.clusterNet().root();
  const NodeId mover = source == 7 ? 8 : 7;

  InFlightBroadcast wave(net.clusterNet(), BroadcastScheme::kCff, source,
                         kPayload, {});
  wave.advanceTo(4);
  const Point2D p = net.position(mover);
  net.moveSensor(mover, {p.x + 30.0, p.y + 30.0});
  wave.noteDisplaced(mover);
  wave.onTopologyChanged();
  wave.runToCompletion();

  const InFlightReport rep = wave.finish();
  EXPECT_TRUE(wave.wasDisplaced(mover));
  EXPECT_EQ(rep.displaced, 1u);
  EXPECT_EQ(rep.intended, rep.departed + rep.displaced + rep.settled);
  // The settled class never counts the displaced node's delivery.
  EXPECT_LE(rep.deliveredSettled, rep.settled);
}

// The interleaved program all scheduler variants must agree on. Builds
// its own network (the program mutates it), runs the wave under the
// given thread count, and returns (report, per-node delivery flags).
struct ProgramOutcome {
  InFlightReport report;
  std::vector<std::uint8_t> deliveredFlags;
};

ProgramOutcome runInterleavedProgram(BroadcastScheme scheme, int threads) {
  SensorNetwork net(paperNetwork(140, 0x1F1B0));
  const NodeId source = net.clusterNet().root();
  ProtocolOptions opts = shardedOptions(net, threads);

  InFlightBroadcast wave(net.clusterNet(), scheme, source, 0xAB, opts);

  const auto resync = [&](std::initializer_list<NodeId> disturbed) {
    for (NodeId v : disturbed) wave.noteDisplaced(v);
    wave.refreshPositions(net.index());
    wave.onTopologyChanged();
  };

  // Segment 1: a drift plus a crash under the wave.
  wave.advanceTo(3);
  const NodeId mover = source == 11 ? 12 : 11;
  const NodeId victim = source == 23 ? 24 : 23;
  const Point2D mp = net.position(mover);
  net.moveSensor(mover, {mp.x + 40.0, mp.y - 25.0});
  net.crashSensor(victim);
  net.repairAfterFailures();
  resync({mover, victim});

  // Segment 2: membership churn — a join and a voluntary departure.
  wave.advanceTo(9);
  net.addSensor({net.position(source).x + 20.0, net.position(source).y});
  const NodeId leaver = source == 37 ? 38 : 37;
  if (net.clusterNet().contains(leaver)) {
    net.removeSensor(leaver);
    resync({leaver});
  } else {
    resync({});
  }

  // Segment 3: another drift, then run out.
  wave.advanceTo(15);
  const NodeId drifter = source == 53 ? 54 : 53;
  if (net.graph().isAlive(drifter)) {
    const Point2D dp = net.position(drifter);
    net.moveSensor(drifter, {dp.x - 35.0, dp.y + 15.0});
    resync({drifter});
  }
  wave.runToCompletion();

  ProgramOutcome out;
  out.report = wave.finish();
  out.deliveredFlags.reserve(wave.intended().size());
  for (NodeId v : wave.intended())
    out.deliveredFlags.push_back(wave.deliveredTo(v) ? 1 : 0);
  return out;
}

TEST(InFlightBroadcastTest, InterleavedChurnBitIdenticalAcrossThreadCounts) {
  for (const BroadcastScheme scheme :
       {BroadcastScheme::kCff, BroadcastScheme::kImprovedCff}) {
    const ProgramOutcome ref = runInterleavedProgram(scheme, /*threads=*/0);
    EXPECT_EQ(ref.report.intended,
              ref.report.departed + ref.report.displaced + ref.report.settled);
    for (const int threads : {1, 2, 8}) {
      SCOPED_TRACE(std::string(toString(scheme)) + " threads=" +
                   std::to_string(threads));
      const ProgramOutcome got = runInterleavedProgram(scheme, threads);
      expectSameReport(got.report, ref.report);
      EXPECT_EQ(got.deliveredFlags, ref.deliveredFlags);
    }
  }
}

}  // namespace
}  // namespace dsn
