// DFO baseline broadcast: correctness, round counts, awake behaviour.
#include <gtest/gtest.h>

#include "broadcast/dfo.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

using testutil::buildNet;
using testutil::randomNet;

TEST(DfoTest, SingleClusterFromHead) {
  const auto pts = deployStar(6, 50.0);
  auto f = buildNet(pts, 50.0);
  const auto run = runDfoBroadcast(*f.net, 0, 0xBEEF);
  EXPECT_TRUE(run.sim.completed);
  EXPECT_TRUE(run.allDelivered());
  EXPECT_EQ(run.collisions, 0u);
  EXPECT_EQ(run.transmissions, 1u);  // lone head transmits once
}

TEST(DfoTest, SingleClusterFromMember) {
  const auto pts = deployStar(6, 50.0);
  auto f = buildNet(pts, 50.0);
  const auto run = runDfoBroadcast(*f.net, 3, 0xBEEF);
  EXPECT_TRUE(run.sim.completed);
  EXPECT_TRUE(run.allDelivered());
  // Member hands to head (1), head passes back to the member (1);
  // the hand-back transmission is what serves the other members.
  EXPECT_EQ(run.transmissions, 2u);
}

TEST(DfoTest, LineNetworkTourLength) {
  // Line of 7: backbone is the whole line (4 heads, 3 gateways).
  const auto pts = deployLine(7, 50.0);
  auto f = buildNet(pts, 50.0);
  const auto run = runDfoBroadcast(*f.net, 0, 1);
  EXPECT_TRUE(run.allDelivered());
  // Eulerian tour over a 7-node path: 2*(7-1) = 12 transmissions.
  EXPECT_EQ(run.transmissions, 12u);
  EXPECT_EQ(run.collisions, 0u);
}

TEST(DfoTest, ExactlyOneTransmitterPerRound) {
  auto f = randomNet(301, 120);
  ProtocolOptions opts;
  opts.traceCapacity = 100000;
  const auto run = runDfoBroadcast(*f.net, f.net->root(), 5, opts);
  EXPECT_TRUE(run.allDelivered());
  EXPECT_EQ(run.collisions, 0u);
  // One transmission per round implies transmissions == busy rounds and
  // the tour length bounds: <= 2(|BT|-1)+1.
  const std::size_t bt = f.net->backboneNodes().size();
  EXPECT_LE(run.transmissions, 2 * bt);
}

TEST(DfoTest, AllNodesReceiveOnRandomNetworks) {
  for (std::uint64_t seed : {311u, 312u, 313u}) {
    auto f = randomNet(seed, 150);
    Rng rng(seed);
    const NodeId source = f.net->netNodes()[rng.pickIndex(
        f.net->netNodes())];
    const auto run = runDfoBroadcast(*f.net, source, 99);
    EXPECT_TRUE(run.sim.completed) << "seed " << seed;
    EXPECT_TRUE(run.allDelivered()) << "seed " << seed;
    EXPECT_EQ(run.collisions, 0u);
  }
}

TEST(DfoTest, RoundsScaleWithBackboneSize) {
  auto small = randomNet(321, 60);
  auto large = randomNet(322, 300);
  const auto runSmall = runDfoBroadcast(*small.net, small.net->root(), 1);
  const auto runLarge = runDfoBroadcast(*large.net, large.net->root(), 1);
  EXPECT_TRUE(runSmall.allDelivered());
  EXPECT_TRUE(runLarge.allDelivered());
  EXPECT_GT(runLarge.sim.rounds, runSmall.sim.rounds);
}

TEST(DfoTest, TokenLossStallsTheTour) {
  auto f = randomNet(331, 100);
  // Kill a backbone node near the root mid-tour: the token dies with it.
  NodeId victim = kInvalidNode;
  for (NodeId v : f.net->backboneNodes()) {
    if (v != f.net->root() && !f.net->children(v).empty()) {
      victim = v;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNode);
  ProtocolOptions opts;
  opts.deaths.emplace_back(victim, 3);
  const auto run = runDfoBroadcast(*f.net, f.net->root(), 1, opts);
  EXPECT_FALSE(run.allDelivered());
  EXPECT_LT(run.coverage(), 1.0);
}

TEST(DfoTest, SourceMustBeInNet) {
  Graph g(2);
  g.addEdge(0, 1);
  ClusterNet net(g);
  net.moveIn(0);
  EXPECT_THROW(runDfoBroadcast(net, 1, 0), PreconditionError);
}

TEST(DfoTest, MembersSleepAfterReceiving) {
  auto f = randomNet(341, 120);
  const auto run = runDfoBroadcast(*f.net, f.net->root(), 1);
  EXPECT_TRUE(run.allDelivered());
  // A member's awake time is its first-receipt time; the max awake over
  // all nodes is bounded by the total tour length.
  EXPECT_LE(run.maxAwakeRounds, static_cast<std::size_t>(run.sim.rounds));
  EXPECT_GT(run.maxAwakeRounds, 0u);
}

TEST(DfoTest, SingleNodeNetwork) {
  Graph g(1);
  ClusterNet net(g);
  net.moveIn(0);
  const auto run = runDfoBroadcast(net, 0, 7);
  EXPECT_TRUE(run.sim.completed);
  EXPECT_TRUE(run.allDelivered());
  EXPECT_EQ(run.intended, 1u);
}

}  // namespace
}  // namespace dsn
