// TDM slot-to-(round, channel) mapping (Theorem 1(3) mechanics).
#include <gtest/gtest.h>

#include <set>

#include "broadcast/tdm.hpp"

namespace dsn {
namespace {

TEST(TdmTest, SingleChannelIdentity) {
  TdmMap tdm(5, 1);
  EXPECT_EQ(tdm.windowLength(), 5);
  for (TimeSlot s = 1; s <= 5; ++s) {
    EXPECT_EQ(tdm.roundOffset(s), static_cast<Round>(s - 1));
    EXPECT_EQ(tdm.channelOf(s), 0u);
  }
}

TEST(TdmTest, TwoChannelsPairSlots) {
  TdmMap tdm(5, 2);
  EXPECT_EQ(tdm.windowLength(), 3);  // ceil(5/2)
  EXPECT_EQ(tdm.roundOffset(1), 0);
  EXPECT_EQ(tdm.channelOf(1), 0u);
  EXPECT_EQ(tdm.roundOffset(2), 0);
  EXPECT_EQ(tdm.channelOf(2), 1u);
  EXPECT_EQ(tdm.roundOffset(3), 1);
  EXPECT_EQ(tdm.channelOf(3), 0u);
  EXPECT_EQ(tdm.roundOffset(5), 2);
  EXPECT_EQ(tdm.channelOf(5), 0u);
}

TEST(TdmTest, DistinctSlotsNeverShareRoundAndChannel) {
  for (Channel k : {1u, 2u, 3u, 4u, 7u}) {
    TdmMap tdm(23, k);
    std::set<std::pair<Round, Channel>> seen;
    for (TimeSlot s = 1; s <= 23; ++s) {
      const auto key = std::make_pair(tdm.roundOffset(s), tdm.channelOf(s));
      EXPECT_TRUE(seen.insert(key).second)
          << "slot " << s << " collides at k=" << k;
      EXPECT_LT(tdm.roundOffset(s), tdm.windowLength());
      EXPECT_LT(tdm.channelOf(s), k);
    }
  }
}

TEST(TdmTest, WindowShrinksByK) {
  for (Channel k : {1u, 2u, 4u, 8u}) {
    TdmMap tdm(16, k);
    EXPECT_EQ(tdm.windowLength(), static_cast<Round>(16 / k));
  }
}

TEST(TdmTest, UnassignedSlotRejected) {
  TdmMap tdm(4, 2);
  EXPECT_THROW(tdm.roundOffset(kNoSlot), PreconditionError);
  EXPECT_THROW(tdm.channelOf(kNoSlot), PreconditionError);
}

TEST(TdmTest, ZeroChannelsRejected) {
  EXPECT_THROW(TdmMap(4, 0), PreconditionError);
}

TEST(TdmTest, EmptyWindowIsZeroRounds) {
  TdmMap tdm(0, 3);
  EXPECT_EQ(tdm.windowLength(), 0);
}

}  // namespace
}  // namespace dsn
