// Convergecast data gathering: exact aggregation, scheduling, failures.
#include <gtest/gtest.h>

#include "broadcast/convergecast.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

using testutil::buildNet;
using testutil::randomNet;

std::vector<std::uint64_t> sequentialValues(std::size_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i + 1;
  return v;
}

std::uint64_t exactSum(const ClusterNet& net,
                       const std::vector<std::uint64_t>& values) {
  std::uint64_t s = 0;
  for (NodeId v : net.netNodes()) s += v < values.size() ? values[v] : 0;
  return s;
}

TEST(ConvergecastTest, SingleNodeAggregatesItself) {
  Graph g(1);
  ClusterNet net(g);
  net.moveIn(0);
  const auto result = runConvergecast(net, {42});
  EXPECT_TRUE(result.sim.completed);
  EXPECT_EQ(result.aggregate, 42u);
  EXPECT_EQ(result.contributors, 1u);
  EXPECT_TRUE(result.complete());
}

TEST(ConvergecastTest, StarSumsAllLeaves) {
  auto f = buildNet(deployStar(7, 50.0), 50.0);
  const auto values = sequentialValues(7);
  const auto result = runConvergecast(*f.net, values);
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.aggregate, exactSum(*f.net, values));
  EXPECT_EQ(result.contributors, 7u);
}

TEST(ConvergecastTest, LineAggregatesHopByHop) {
  auto f = buildNet(deployLine(10, 50.0), 50.0);
  const auto values = sequentialValues(10);
  const auto result = runConvergecast(*f.net, values);
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.aggregate, 55u);
  // One transmission per non-root node.
  EXPECT_EQ(result.transmissions, 9u);
}

class ConvergecastSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ConvergecastSweep, ExactSumOnRandomNetworks) {
  const auto seed = GetParam();
  auto f = randomNet(seed, 180);
  const auto values = sequentialValues(180);
  const auto result = runConvergecast(*f.net, values);
  EXPECT_TRUE(result.sim.completed) << "seed " << seed;
  EXPECT_TRUE(result.complete())
      << "yield " << result.yield() << " seed " << seed;
  EXPECT_EQ(result.aggregate, exactSum(*f.net, values));
  // Every non-root transmits exactly once.
  EXPECT_EQ(result.transmissions, f.net->netSize() - 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvergecastSweep,
                         ::testing::Values(1001u, 1002u, 1003u, 1004u,
                                           1005u, 1006u));

TEST(ConvergecastTest, ScheduleWithinGatherBound) {
  auto f = randomNet(1011, 200);
  const auto result =
      runConvergecast(*f.net, sequentialValues(200));
  EXPECT_TRUE(result.complete());
  const Round bound = static_cast<Round>(f.net->rootMaxUpSlot()) *
                      (f.net->height() + 1);
  EXPECT_LE(result.sim.rounds, bound + 1);
}

TEST(ConvergecastTest, AwakeBounded) {
  auto f = randomNet(1012, 200);
  const auto result =
      runConvergecast(*f.net, sequentialValues(200));
  // Listen one window + transmit once.
  EXPECT_LE(result.maxAwakeRounds,
            2 * static_cast<std::size_t>(f.net->rootMaxUpSlot()) + 1);
}

TEST(ConvergecastTest, MultiChannelStillExact) {
  auto f = randomNet(1013, 150);
  const auto values = sequentialValues(150);
  for (Channel k : {2u, 4u}) {
    ProtocolOptions opts;
    opts.channels = k;
    const auto result = runConvergecast(*f.net, values, opts);
    EXPECT_TRUE(result.complete()) << "k=" << k;
    EXPECT_EQ(result.aggregate, exactSum(*f.net, values));
  }
}

TEST(ConvergecastTest, DeadSubtreeIsMissingFromSum) {
  auto f = randomNet(1014, 150);
  // Kill one internal backbone node from the start: its whole subtree's
  // contribution is lost, everything else must arrive.
  NodeId victim = kInvalidNode;
  for (NodeId v : f.net->backboneNodes()) {
    if (v != f.net->root() && f.net->children(v).size() >= 2) {
      victim = v;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNode);
  std::size_t subtreeSize = 0;
  std::vector<NodeId> stack{victim};
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    ++subtreeSize;
    for (NodeId c : f.net->children(x)) stack.push_back(c);
  }

  ProtocolOptions opts;
  opts.deaths.emplace_back(victim, 0);
  const auto result =
      runConvergecast(*f.net, sequentialValues(150), opts);
  EXPECT_EQ(result.contributors, 150u - subtreeSize);
  EXPECT_FALSE(result.complete());
}

TEST(ConvergecastTest, SurvivesChurnedStructure) {
  auto f = randomNet(1015, 120);
  Rng rng(1015);
  for (int i = 0; i < 15; ++i) {
    const auto nodes = f.net->netNodes();
    f.net->moveOut(nodes[rng.pickIndex(nodes)]);
  }
  std::vector<std::uint64_t> values(f.graph->size(), 3);
  const auto result = runConvergecast(*f.net, values);
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.aggregate, 3u * f.net->netSize());
}

TEST(ConvergecastTest, EmptyNetRejected) {
  Graph g(1);
  ClusterNet net(g);
  EXPECT_THROW(runConvergecast(net, {1}), PreconditionError);
}

}  // namespace
}  // namespace dsn
