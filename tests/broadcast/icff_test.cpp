// Algorithm 2 (backbone flood + leaf window): correctness and the
// Theorem-1 round/awake bounds.
#include <gtest/gtest.h>

#include <tuple>

#include "broadcast/improved_cff.hpp"
#include "cluster/backbone.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

using testutil::buildNet;
using testutil::randomNet;

class IcffSweep : public ::testing::TestWithParam<
                      std::tuple<std::uint64_t, std::size_t, int>> {};

TEST_P(IcffSweep, FullDeliveryNoCollisions) {
  const auto [seed, n, fieldUnits] = GetParam();
  auto f = randomNet(seed, n, fieldUnits);
  Rng rng(seed);
  const auto nodes = f.net->netNodes();
  const NodeId source = nodes[rng.pickIndex(nodes)];
  const auto run = runImprovedCffBroadcast(*f.net, source, 0xAB);
  EXPECT_TRUE(run.sim.completed);
  EXPECT_TRUE(run.allDelivered())
      << "coverage " << run.coverage() << " seed " << seed;
  // Collisions at duplicated slots are harmless; every receiver is
  // guaranteed one collision-free slot (Time-Slot Conditions).
}

INSTANTIATE_TEST_SUITE_P(
    RandomNetworks, IcffSweep,
    ::testing::Values(std::make_tuple(501u, std::size_t{50}, 8),
                      std::make_tuple(502u, std::size_t{120}, 10),
                      std::make_tuple(503u, std::size_t{250}, 10),
                      std::make_tuple(504u, std::size_t{150}, 12),
                      std::make_tuple(505u, std::size_t{100}, 4),
                      std::make_tuple(506u, std::size_t{80}, 16),
                      std::make_tuple(507u, std::size_t{350}, 10)));

TEST(IcffTest, Theorem1CompletionBound) {
  auto f = randomNet(511, 250);
  const auto run = runImprovedCffBroadcast(*f.net, f.net->root(), 1);
  EXPECT_TRUE(run.allDelivered());
  // Theorem 1(1): δ·h + Δ rounds (root source, so no path prefix). Our
  // backbone flood uses H+1 windows with H = backbone height <= h.
  const Round bound =
      static_cast<Round>(f.net->rootMaxBSlot()) * (f.net->height() + 1) +
      static_cast<Round>(f.net->rootMaxLSlot());
  EXPECT_LE(run.completionRounds(), bound + 1);
}

TEST(IcffTest, Theorem1AwakeBound) {
  auto f = randomNet(512, 250);
  const auto run = runImprovedCffBroadcast(*f.net, f.net->root(), 1);
  // Theorem 1(2): every node awake <= 2δ + Δ rounds.
  const std::size_t bound =
      2 * static_cast<std::size_t>(f.net->rootMaxBSlot()) +
      static_cast<std::size_t>(f.net->rootMaxLSlot());
  EXPECT_LE(run.maxAwakeRounds, bound + 2);
}

TEST(IcffTest, FasterThanAlgorithmOneOnLargeNetworks) {
  // The point of Algorithm 2: backbone windows (δ) are much narrower
  // than whole-CNet windows (Δ̄ over Condition 1), so ICFF completes in
  // fewer rounds on dense networks.
  auto f = randomNet(513, 300, 8);
  const auto icff = runImprovedCffBroadcast(*f.net, f.net->root(), 1);
  EXPECT_TRUE(icff.allDelivered());
  EXPECT_LE(icff.scheduleLength,
            static_cast<Round>(f.net->rootMaxBSlot()) *
                    (f.net->height() + 1) +
                f.net->rootMaxLSlot());
}

TEST(IcffTest, MembersAwakeOnlyInLeafWindow) {
  auto f = randomNet(514, 200);
  ProtocolOptions opts;
  const auto run = runImprovedCffBroadcast(*f.net, f.net->root(), 1, opts);
  EXPECT_TRUE(run.allDelivered());
  // The leaf window is the last Δ/k rounds of the schedule; a member that
  // slept through the backbone flood has awake <= Δ.
  // maxAwake is over ALL nodes, so only check it doesn't exceed the
  // Theorem-1 bound; per-member awake is covered by Theorem1AwakeBound.
  EXPECT_GT(run.maxAwakeRounds, 0u);
}

TEST(IcffTest, DeepSourceRelaysUpThenFloods) {
  auto f = randomNet(515, 150);
  NodeId deepest = f.net->root();
  for (NodeId v : f.net->netNodes())
    if (f.net->depth(v) > f.net->depth(deepest)) deepest = v;
  ASSERT_GT(f.net->depth(deepest), 1);
  const auto run = runImprovedCffBroadcast(*f.net, deepest, 1);
  EXPECT_TRUE(run.allDelivered());
  EXPECT_EQ(run.collisions, 0u);
}

TEST(IcffTest, BackboneDeathSparesOtherBranches) {
  auto f = randomNet(516, 200);
  NodeId victim = kInvalidNode;
  for (NodeId v : f.net->backboneNodes()) {
    if (f.net->depth(v) == 2 && !f.net->children(v).empty()) {
      victim = v;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNode);
  ProtocolOptions opts;
  opts.deaths.emplace_back(victim, 0);
  const auto run = runImprovedCffBroadcast(*f.net, f.net->root(), 1, opts);
  EXPECT_FALSE(run.allDelivered());
  EXPECT_GT(run.coverage(), 0.5);
}

TEST(IcffTest, LineAndStarTopologies) {
  {
    auto f = buildNet(deployLine(9, 50.0), 50.0);
    const auto run = runImprovedCffBroadcast(*f.net, 0, 1);
    EXPECT_TRUE(run.allDelivered());
    EXPECT_EQ(run.collisions, 0u);
  }
  {
    auto f = buildNet(deployStar(9, 50.0), 50.0);
    const auto run = runImprovedCffBroadcast(*f.net, 0, 1);
    EXPECT_TRUE(run.allDelivered());
    EXPECT_EQ(run.collisions, 0u);
  }
}

TEST(IcffTest, SingleNode) {
  Graph g(1);
  ClusterNet net(g);
  net.moveIn(0);
  const auto run = runImprovedCffBroadcast(net, 0, 3);
  EXPECT_TRUE(run.sim.completed);
  EXPECT_TRUE(run.allDelivered());
}

TEST(IcffTest, SchedulesShorterThanDfoToursOnBigNets) {
  // Fig. 8's headline: CFF beats DFO and the gap widens with n.
  auto f = randomNet(517, 400);
  const auto run = runImprovedCffBroadcast(*f.net, f.net->root(), 1);
  EXPECT_TRUE(run.allDelivered());
  const std::size_t bt = f.net->backboneNodes().size();
  EXPECT_LT(static_cast<std::size_t>(run.sim.rounds), 2 * bt);
}

}  // namespace
}  // namespace dsn
