// Multicast on MCNet(G): pruning, delivery, speedup, and the pruning
// soundness gap the paper glosses over (DESIGN.md §4).
#include <gtest/gtest.h>

#include "broadcast/improved_cff.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

using testutil::buildNet;
using testutil::randomNet;

constexpr GroupId kAlpha = 1;

TEST(MulticastTest, SingleMemberGroupReached) {
  auto f = randomNet(601, 120);
  // Deepest member joins the group.
  NodeId target = f.net->root();
  for (NodeId v : f.net->pureMembers())
    if (f.net->depth(v) > f.net->depth(target)) target = v;
  f.net->joinGroup(target, kAlpha);

  const auto run = runMulticast(*f.net, f.net->root(), kAlpha, 0x5150);
  EXPECT_TRUE(run.sim.completed);
  EXPECT_EQ(run.intended, 1u);
  EXPECT_TRUE(run.allDelivered());
}

TEST(MulticastTest, PrunedSubtreesStayQuiet) {
  auto f = randomNet(602, 200);
  // One localized group: members of a single cluster.
  const auto heads = f.net->clusterHeads();
  NodeId busyHead = kInvalidNode;
  for (NodeId h : heads) {
    if (f.net->clusterMembers(h).size() >= 3) {
      busyHead = h;
      break;
    }
  }
  ASSERT_NE(busyHead, kInvalidNode);
  for (NodeId m : f.net->clusterMembers(busyHead))
    if (f.net->status(m) == NodeStatus::kPureMember)
      f.net->joinGroup(m, kAlpha);

  const auto pruned =
      runMulticast(*f.net, f.net->root(), kAlpha, 1,
                   MulticastMode::kPrunedRelay);
  const auto flood = runMulticast(*f.net, f.net->root(), kAlpha, 1,
                                  MulticastMode::kFullFlood);
  EXPECT_TRUE(flood.allDelivered());
  // §3.4 claim: pruning transmits (and wakes) much less than flooding.
  EXPECT_LT(pruned.transmissions, flood.transmissions);
}

TEST(MulticastTest, FullFloodAlwaysDelivers) {
  for (std::uint64_t seed : {611u, 612u, 613u}) {
    auto f = randomNet(seed, 150);
    Rng rng(seed);
    for (NodeId v : f.net->netNodes())
      if (rng.chance(0.2)) f.net->joinGroup(v, kAlpha);
    const auto run = runMulticast(*f.net, f.net->root(), kAlpha, 1,
                                  MulticastMode::kFullFlood);
    EXPECT_TRUE(run.allDelivered()) << "seed " << seed;
  }
}

TEST(MulticastTest, PrunedDeliveryMeasuredAgainstFullFlood) {
  // The paper's pruning can starve a member whose unique-slot provider
  // was pruned; measure rather than assume. Coverage must stay very high
  // and full-flood is the reference.
  std::size_t prunedMisses = 0;
  std::size_t totalIntended = 0;
  for (std::uint64_t seed : {621u, 622u, 623u, 624u, 625u}) {
    auto f = randomNet(seed, 150);
    Rng rng(seed);
    for (NodeId v : f.net->netNodes())
      if (rng.chance(0.25)) f.net->joinGroup(v, kAlpha);
    const auto pruned = runMulticast(*f.net, f.net->root(), kAlpha, 1,
                                     MulticastMode::kPrunedRelay);
    totalIntended += pruned.intended;
    prunedMisses += pruned.intended - pruned.delivered;
  }
  ASSERT_GT(totalIntended, 0u);
  EXPECT_LT(static_cast<double>(prunedMisses) /
                static_cast<double>(totalIntended),
            0.05);
}

TEST(MulticastTest, BackboneGroupMembersReceiveInBackbonePhase) {
  auto f = randomNet(631, 150);
  // Put every gateway in the group: they are served by step 1.
  std::size_t joined = 0;
  for (NodeId v : f.net->backboneNodes()) {
    if (f.net->status(v) == NodeStatus::kGateway) {
      f.net->joinGroup(v, kAlpha);
      ++joined;
    }
  }
  ASSERT_GT(joined, 0u);
  const auto run = runMulticast(*f.net, f.net->root(), kAlpha, 1,
                                MulticastMode::kFullFlood);
  EXPECT_TRUE(run.allDelivered());
}

TEST(MulticastTest, EmptyGroupFinishesImmediately) {
  auto f = randomNet(641, 100);
  const auto run = runMulticast(*f.net, f.net->root(), kAlpha, 1);
  EXPECT_TRUE(run.sim.completed);
  EXPECT_EQ(run.intended, 0u);
  EXPECT_EQ(run.coverage(), 1.0);
  // No relay list contains the group: nothing beyond the root's own
  // (pruned) duties may be transmitted.
  EXPECT_LE(run.transmissions, 1u);
}

TEST(MulticastTest, GroupSourceInsideGroupSubtree) {
  auto f = randomNet(651, 150);
  // Source is a member of the group and not the root.
  NodeId source = kInvalidNode;
  for (NodeId v : f.net->pureMembers()) {
    if (f.net->depth(v) >= 2) {
      source = v;
      break;
    }
  }
  ASSERT_NE(source, kInvalidNode);
  f.net->joinGroup(source, kAlpha);
  // A second member somewhere else.
  for (NodeId v : f.net->pureMembers()) {
    if (v != source) {
      f.net->joinGroup(v, kAlpha);
      break;
    }
  }
  const auto run = runMulticast(*f.net, source, kAlpha, 1,
                                MulticastMode::kFullFlood);
  EXPECT_TRUE(run.allDelivered());
}

TEST(MulticastTest, MulticastCheaperThanBroadcastForLocalGroups) {
  // §3.4: "a multicast will be much faster than a broadcast" — measured
  // as transmissions (energy) for a localized group.
  auto f = randomNet(661, 250);
  // Group: members of the deepest head only.
  NodeId deepHead = f.net->root();
  for (NodeId h : f.net->clusterHeads())
    if (f.net->depth(h) > f.net->depth(deepHead)) deepHead = h;
  for (NodeId c : f.net->children(deepHead)) f.net->joinGroup(c, kAlpha);

  const auto mcast = runMulticast(*f.net, f.net->root(), kAlpha, 1,
                                  MulticastMode::kPrunedRelay);
  const auto bcast =
      runImprovedCffBroadcast(*f.net, f.net->root(), 1);
  EXPECT_TRUE(bcast.allDelivered());
  EXPECT_LT(mcast.transmissions, bcast.transmissions / 2);
}

}  // namespace
}  // namespace dsn
