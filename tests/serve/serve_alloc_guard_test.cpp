// Steady-state allocation guard for the resident serve loop.
//
// The serve engine promises zero marginal heap allocations per job in
// its steady state at --jobs 1 with telemetry off (DESIGN.md §17): warm
// cache hit (map find + refcount), pooled scratch lease (freelist pop),
// record rendered by appending into the worker's retained buffer
// through stack number formatting. This binary overrides the global
// allocator with a counting shim, like tests/radio/alloc_guard_test.cpp
// does for the resolver, and checks two things after an unarmored
// warm-up pass over the same jobs:
//
//  1. A batch of engine-only jobs (empty scenario, warm fingerprint)
//     costs EXACTLY ZERO allocations — the serving machinery itself
//     never touches the heap.
//  2. A batch of real broadcast jobs costs exactly the same allocation
//     count every time it is served — the scenario runs allocate, the
//     engine adds zero marginal cost and retains no growing state.
//
// Plain executable (not gtest) so the allocator override sees only our
// own code paths.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <string_view>
#include <vector>

#include "serve/engine.hpp"
#include "serve/job.hpp"

namespace {

std::atomic<std::size_t> g_allocs{0};
bool g_armed = false;

}  // namespace

// See tests/radio/alloc_guard_test.cpp: with both operators replaced,
// malloc/free is the correct pairing and GCC's mismatch warning is a
// false positive.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  if (g_armed) g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dsn::serve {
namespace {

ServeJob makeJob(std::size_t index, const char* scenario) {
  ServeJob job;
  job.index = index;
  job.id = index;
  job.nodes = 150;
  job.seed = 2007;  // one deployment -> one warm fingerprint
  job.scenarioText = scenario;
  job.events = parseScenario(job.scenarioText);
  job.mutates = scenarioMutatesNetwork(job.events);
  job.fingerprint = deploymentFingerprint(jobNetworkConfig(job));
  return job;
}

int run() {
  ServeOptions options;
  options.jobs = 1;
  options.cacheCapacity = 8;
  ServeEngine engine(options);

  // Everything that is allowed to allocate happens before arming: job
  // parsing, scratch pool warm-up, the warm network build, the record
  // buffer's high-water mark, the engine's status buffer.
  std::vector<ServeJob> engineOnly;
  for (std::size_t i = 0; i < 64; ++i) engineOnly.push_back(makeJob(i, ""));
  std::vector<ServeJob> broadcasts;
  for (std::size_t i = 0; i < 32; ++i)
    broadcasts.push_back(makeJob(i, "broadcast random icff"));

  const NetworkConfig cfg = jobNetworkConfig(engineOnly.front());
  engine.warmUp(&cfg);

  std::size_t bytes = 0;
  const std::function<void(std::string_view)> count =
      [&bytes](std::string_view record) { bytes += record.size(); };

  // Unarmored warm-up passes: populate the cache, reach every retained
  // buffer's high-water mark.
  engine.serveJobs(engineOnly, count);
  engine.serveJobs(broadcasts, count);
  if (bytes == 0) {
    std::fprintf(stderr, "FAIL: warm-up passes emitted no record bytes\n");
    return 1;
  }

  // 1. The serving machinery alone: zero allocations for a whole batch.
  bytes = 0;
  g_armed = true;
  const ServeReport engineReport = engine.serveJobs(engineOnly, count);
  g_armed = false;
  if (!engineReport.ok() || engineReport.jobsRun != engineOnly.size() ||
      bytes == 0) {
    std::fprintf(stderr, "FAIL: engine-only batch did not serve cleanly\n");
    return 1;
  }
  if (engineReport.cache.hits != engineOnly.size()) {
    std::fprintf(stderr,
                 "FAIL: expected every engine-only job to hit the warm "
                 "cache (%zu of %zu hit)\n",
                 static_cast<std::size_t>(engineReport.cache.hits),
                 engineOnly.size());
    return 1;
  }
  if (g_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu heap allocations across a %zu-job steady-state "
                 "serve batch (expected 0)\n",
                 g_allocs.load(std::memory_order_relaxed), engineOnly.size());
    return 1;
  }

  // 2. Real scenario runs allocate inside runScenario, but serving the
  // same batch twice must cost the same count — any engine-side growth
  // (pool, cache, sequencer, buffers) would show up as a delta.
  g_armed = true;
  const std::size_t first = g_allocs.load(std::memory_order_relaxed);
  engine.serveJobs(broadcasts, count);
  const std::size_t second = g_allocs.load(std::memory_order_relaxed);
  engine.serveJobs(broadcasts, count);
  const std::size_t third = g_allocs.load(std::memory_order_relaxed);
  g_armed = false;
  const std::size_t passOne = second - first;
  const std::size_t passTwo = third - second;
  if (passOne == 0) {
    std::fprintf(stderr, "FAIL: broadcast batch allocated nothing — the "
                         "marginal-cost guard is not measuring real work\n");
    return 1;
  }
  if (passTwo != passOne) {
    std::fprintf(stderr,
                 "FAIL: serve loop accumulates allocations: first "
                 "broadcast batch cost %zu, second cost %zu\n",
                 passOne, passTwo);
    return 1;
  }

  std::printf("ok: %zu engine-only jobs served with 0 allocations; "
              "%zu-job broadcast batch stable at %zu allocations per "
              "pass\n",
              engineOnly.size(), broadcasts.size(), passOne);
  return 0;
}

}  // namespace
}  // namespace dsn::serve

int main() { return dsn::serve::run(); }
