// ServeEngine: record purity (solo == batched, any worker count, warm
// or cold), stream-order emission, in-place error records, warm-cache
// hit-rate and CSR freshness over a mixed stream, and the mutating-job
// private-build rule.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/engine.hpp"
#include "serve/job.hpp"
#include "serve/json_value.hpp"

namespace dsn::serve {
namespace {

/// Engine records carry a telemetry section per job, so the purity
/// tests run with observability on — the harder configuration, since a
/// leaked instrument name or misattributed build counter would show up
/// as a byte diff.
class ServeEngineTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::setEnabled(true); }
  void TearDown() override { obs::setEnabled(false); }
};

std::vector<std::string> serveAll(const std::vector<ServeJob>& jobs,
                                  int workers, std::size_t cacheCapacity,
                                  ServeReport* report = nullptr) {
  ServeOptions options;
  options.jobs = workers;
  options.cacheCapacity = cacheCapacity;
  ServeEngine engine(options);
  std::vector<std::string> records;
  records.reserve(jobs.size());
  const ServeReport r = engine.serveJobs(
      jobs, [&](std::string_view rec) { records.emplace_back(rec); });
  if (report != nullptr) *report = r;
  return records;
}

TEST_F(ServeEngineTest, BatchIsByteIdenticalAcrossWorkerCounts) {
  const auto jobs = demoJobs(40, 2007, 100, 6, 16, 4);
  ServeReport r1;
  const auto at1 = serveAll(jobs, 1, 64, &r1);
  const auto at2 = serveAll(jobs, 2, 64);
  const auto at8 = serveAll(jobs, 8, 64);
  ASSERT_EQ(at1.size(), jobs.size());
  EXPECT_TRUE(r1.ok());
  EXPECT_EQ(r1.jobsRun, jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(at1[i], at2[i]) << "job " << i << " differs at --jobs 2";
    EXPECT_EQ(at1[i], at8[i]) << "job " << i << " differs at --jobs 8";
  }
}

TEST_F(ServeEngineTest, SoloRunMatchesBatchedRecordByteForByte) {
  const auto jobs = demoJobs(100, 2007, 100, 6, 16, 4);
  const auto batched = serveAll(jobs, 8, 64);
  ASSERT_EQ(batched.size(), jobs.size());

  // A light job, a heavy one, a mutating one, and the tail — each run
  // alone on a fresh cold engine must reproduce its batch record
  // exactly: the record is a pure function of the job line, not of
  // batch position, worker count, or cache state.
  for (const std::size_t i : {std::size_t{0}, std::size_t{3},
                              std::size_t{15}, std::size_t{57},
                              std::size_t{99}}) {
    ServeJob solo = jobs[i];
    solo.index = 0;
    const auto records = serveAll({solo}, 1, 64);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0], batched[i]) << "job " << i << " solo != batched";
  }
}

TEST_F(ServeEngineTest, WarmAndColdCacheEmitIdenticalRecords) {
  const auto jobs = demoJobs(30, 5, 80, 3, 10, 4);
  const auto warm = serveAll(jobs, 1, 64);
  const auto cold = serveAll(jobs, 1, 0);  // bypass: build per job
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < warm.size(); ++i)
    EXPECT_EQ(warm[i], cold[i]) << "job " << i << " warm != cold";
}

TEST_F(ServeEngineTest, WarmCacheHitRateOverReadOnlyStream) {
  // Read-only stream (no mutating jobs): every deployment builds once,
  // every revisit is a hit, and nothing ever invalidates the pre-warmed
  // CSR snapshot.
  const auto jobs = demoJobs(60, 2007, 80, 5, /*mutatingEvery=*/0, 4);
  std::set<std::uint64_t> unique;
  for (const auto& job : jobs) unique.insert(job.fingerprint);

  ServeReport report;
  serveAll(jobs, 1, 64, &report);
  EXPECT_EQ(report.cache.misses, unique.size());
  EXPECT_EQ(report.cache.hits, jobs.size() - unique.size());
  EXPECT_GT(report.cache.hitRate, 0.8);
  EXPECT_EQ(report.cache.csrStale, 0u)
      << "a warm lease saw a stale CSR snapshot — something rebuilt or "
         "mutated the shared network";
  EXPECT_EQ(report.cache.evictions, 0u);
}

TEST_F(ServeEngineTest, MutatingJobsNeverTouchTheSharedCache) {
  std::vector<ServeJob> jobs;
  for (std::size_t i = 0; i < 4; ++i) {
    ServeJob job;
    job.index = i;
    job.id = i;
    job.nodes = 60;
    job.seed = 9;  // same deployment every time
    job.scenarioText = "churn 1.5 2\nrepair\nvalidate";
    job.events = parseScenario(job.scenarioText);
    job.mutates = scenarioMutatesNetwork(job.events);
    ASSERT_TRUE(job.mutates);
    job.fingerprint = deploymentFingerprint(jobNetworkConfig(job));
    jobs.push_back(std::move(job));
  }
  ServeReport report;
  const auto records = serveAll(jobs, 1, 64, &report);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.cache.hits + report.cache.misses, 0u)
      << "a mutating job leased the shared warm network";
  // Same line, same record — private builds are still deterministic.
  EXPECT_EQ(records[0].substr(records[0].find("\"config\"")),
            records[3].substr(records[3].find("\"config\"")));
}

TEST_F(ServeEngineTest, ServeStreamEmitsInOrderWithInPlaceErrors) {
  std::istringstream in(
      "# a comment, then a blank line\n"
      "\n"
      R"({"schema":"dsnet-job-v1","id":3,"nodes":50,"scenario":"validate"})"
      "\n"
      "this line is not json\n"
      R"({"schema":"dsnet-job-v1","id":7,"nodes":50,"scenario":"validate"})"
      "\n"
      R"({"schema":"dsnet-job-v1","id":5,"nodes":50,"scenario":"validate"})"
      "\n");
  std::ostringstream out;
  ServeEngine engine({.jobs = 2, .cacheCapacity = 8});
  const ServeReport report = engine.serveStream(in, out);

  EXPECT_EQ(report.jobsRun, 4u);
  EXPECT_EQ(report.parseErrors, 2u);  // bad json + non-increasing id 5
  EXPECT_FALSE(report.ok());

  std::vector<std::string> lines;
  std::string line;
  std::istringstream result(out.str());
  while (std::getline(result, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);

  // Every line is valid JSON; order follows the stream.
  for (const auto& l : lines) EXPECT_NO_THROW(parseJson(l)) << l;
  EXPECT_NE(lines[0].find("\"schema\":\"dsnet-run-v1\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"job\":3"), std::string::npos);
  EXPECT_NE(lines[1].find("\"schema\":\"dsnet-error-v1\""),
            std::string::npos);
  EXPECT_NE(lines[1].find("\"line\":2"), std::string::npos);
  EXPECT_NE(lines[2].find("\"job\":7"), std::string::npos);
  EXPECT_NE(lines[3].find("\"schema\":\"dsnet-error-v1\""),
            std::string::npos);
  EXPECT_NE(lines[3].find("strictly increasing"), std::string::npos);
}

TEST_F(ServeEngineTest, RecordsOmitTimingUnlessRequested) {
  std::vector<ServeJob> jobs{parseJobLine(
      R"({"schema":"dsnet-job-v1","nodes":50,"scenario":"validate"})", 0)};
  ASSERT_FALSE(jobs[0].failed());
  const auto plain = serveAll(jobs, 1, 8);
  EXPECT_EQ(plain[0].find("\"timing\""), std::string::npos);

  ServeOptions options;
  options.includeTiming = true;
  ServeEngine engine(options);
  std::string withTiming;
  engine.serveJobs(jobs, [&](std::string_view r) { withTiming = r; });
  EXPECT_NE(withTiming.find("\"timing\""), std::string::npos);
}

}  // namespace
}  // namespace dsn::serve
