// dsnet-job-v1 line protocol: parse/format round-trips, defaults that
// match the wsn_sim CLI, error reporting that never throws, the
// strictly-increasing id rule, and the deployment fingerprint / share-
// safety classification the warm cache is keyed on.
#include <gtest/gtest.h>

#include <set>

#include "core/scenario.hpp"
#include "core/sensor_network.hpp"
#include "serve/job.hpp"

namespace dsn::serve {
namespace {

TEST(ServeJob, ParsesMinimalLineWithDefaults) {
  const ServeJob job = parseJobLine(
      R"({"schema":"dsnet-job-v1","nodes":120,"scenario":"validate"})", 3);
  ASSERT_FALSE(job.failed()) << job.parseError;
  EXPECT_EQ(job.index, 3u);
  EXPECT_EQ(job.id, 3u);  // defaults to the line index
  EXPECT_EQ(job.nodes, 120u);
  EXPECT_EQ(job.seed, 1u);
  EXPECT_EQ(job.fieldUnits, 10);
  EXPECT_DOUBLE_EQ(job.range, 50.0);
  EXPECT_EQ(job.deploy, DeploymentKind::kIncrementalAttach);
  EXPECT_EQ(job.channels, 1u);
  EXPECT_DOUBLE_EQ(job.drop, 0.0);
  EXPECT_FALSE(job.protocol.has_value());
  EXPECT_EQ(job.traceCapacity, 0u);
  EXPECT_EQ(job.threads, 0);
  EXPECT_FALSE(job.autoRepair);
  EXPECT_EQ(job.events.size(), 1u);
  EXPECT_FALSE(job.mutates);
  EXPECT_NE(job.fingerprint, 0u);
}

TEST(ServeJob, ParsesEveryKnob) {
  const ServeJob job = parseJobLine(
      R"({"schema":"dsnet-job-v1","id":9,"nodes":80,"seed":2007,)"
      R"("field_units":6,"range":40.5,"deploy":"grid","channels":3,)"
      R"("drop":0.25,"protocol":"gossip","trace_cap":64,"threads":2,)"
      R"("auto_repair":true,"scenario":"broadcast random icff\ngather"})",
      0);
  ASSERT_FALSE(job.failed()) << job.parseError;
  EXPECT_EQ(job.id, 9u);
  EXPECT_EQ(job.nodes, 80u);
  EXPECT_EQ(job.seed, 2007u);
  EXPECT_EQ(job.fieldUnits, 6);
  EXPECT_DOUBLE_EQ(job.range, 40.5);
  EXPECT_EQ(job.deploy, DeploymentKind::kGrid);
  EXPECT_EQ(job.channels, 3u);
  EXPECT_DOUBLE_EQ(job.drop, 0.25);
  ASSERT_TRUE(job.protocol.has_value());
  EXPECT_EQ(*job.protocol, BroadcastScheme::kGossip);
  EXPECT_EQ(job.traceCapacity, 64u);
  EXPECT_EQ(job.threads, 2);
  EXPECT_TRUE(job.autoRepair);
  EXPECT_EQ(job.events.size(), 2u);
}

TEST(ServeJob, FormatParseRoundTrip) {
  for (const ServeJob& original : demoJobs(40, 11, 150, 5)) {
    const std::string line = formatJobLine(original);
    const ServeJob parsed = parseJobLine(line, original.index);
    ASSERT_FALSE(parsed.failed()) << line << " -> " << parsed.parseError;
    EXPECT_EQ(parsed.id, original.id);
    EXPECT_EQ(parsed.nodes, original.nodes);
    EXPECT_EQ(parsed.seed, original.seed);
    EXPECT_EQ(parsed.scenarioText, original.scenarioText);
    EXPECT_EQ(parsed.mutates, original.mutates);
    EXPECT_EQ(parsed.fingerprint, original.fingerprint);
    EXPECT_EQ(formatJobLine(parsed), line);
  }
}

TEST(ServeJob, MalformedLinesReportInsteadOfThrow) {
  const char* const kBad[] = {
      "",                                                      // empty
      "not json",                                              // not JSON
      "[1,2,3]",                                               // not object
      R"({"schema":"dsnet-job-v2","nodes":10,"scenario":""})",  // schema
      R"({"schema":"dsnet-job-v1","scenario":"validate"})",     // no nodes
      R"({"schema":"dsnet-job-v1","nodes":0,"scenario":""})",   // zero nodes
      R"({"schema":"dsnet-job-v1","nodes":10})",                // no scenario
      R"({"schema":"dsnet-job-v1","nodes":10,"range":-1,"scenario":""})",
      R"({"schema":"dsnet-job-v1","nodes":10,"drop":1.0,"scenario":""})",
      R"({"schema":"dsnet-job-v1","nodes":10,"deploy":"ring","scenario":""})",
      R"({"schema":"dsnet-job-v1","nodes":10,"protocol":"x","scenario":""})",
      R"({"schema":"dsnet-job-v1","nodes":10,"scenario":"frobnicate"})",
  };
  for (const char* line : kBad) {
    const ServeJob job = parseJobLine(line, 7);
    EXPECT_TRUE(job.failed()) << "accepted: " << line;
    EXPECT_EQ(job.index, 7u);
  }
}

TEST(ServeJob, IdsMustStrictlyIncrease) {
  const std::uint64_t previous = 5;
  const ServeJob ok = parseJobLine(
      R"({"schema":"dsnet-job-v1","id":6,"nodes":10,"scenario":"validate"})",
      1, &previous);
  EXPECT_FALSE(ok.failed()) << ok.parseError;
  for (const char* line :
       {R"({"schema":"dsnet-job-v1","id":5,"nodes":10,"scenario":""})",
        R"({"schema":"dsnet-job-v1","id":4,"nodes":10,"scenario":""})"}) {
    const ServeJob dup = parseJobLine(line, 1, &previous);
    EXPECT_TRUE(dup.failed()) << "accepted non-increasing id: " << line;
  }
}

TEST(ServeJob, FingerprintCoversEveryDeploymentKnob) {
  ServeJob base;
  base.nodes = 100;
  base.seed = 42;
  base.scenarioText = "validate";
  const std::uint64_t fp = deploymentFingerprint(jobNetworkConfig(base));

  // Identical job -> identical fingerprint (the cache-hit guarantee).
  EXPECT_EQ(deploymentFingerprint(jobNetworkConfig(base)), fp);

  // Any deployment-affecting knob must change the key.
  std::set<std::uint64_t> fps{fp};
  auto expectFresh = [&](const ServeJob& changed) {
    const std::uint64_t f = deploymentFingerprint(jobNetworkConfig(changed));
    EXPECT_TRUE(fps.insert(f).second)
        << "fingerprint collision on a changed deployment knob";
  };
  ServeJob j = base;
  j.nodes = 101;
  expectFresh(j);
  j = base;
  j.seed = 43;
  expectFresh(j);
  j = base;
  j.fieldUnits = 11;
  expectFresh(j);
  j = base;
  j.range = 49.0;
  expectFresh(j);
  j = base;
  j.deploy = DeploymentKind::kGrid;
  expectFresh(j);
  j = base;
  j.autoRepair = true;
  expectFresh(j);

  // Scenario/runtime knobs are NOT part of the deployment: two jobs
  // that differ only in what they run share the warm network.
  j = base;
  j.scenarioText = "broadcast random icff";
  j.drop = 0.2;
  j.channels = 3;
  EXPECT_EQ(deploymentFingerprint(jobNetworkConfig(j)), fp);
}

TEST(ServeJob, ShareSafetyClassification) {
  const char* const kReadOnly[] = {
      "broadcast random icff", "broadcast random rlnc",
      "rbroadcast random icff 6", "gather", "validate",
      "faults drop 0.1\nbroadcast random cff",
  };
  for (const char* text : kReadOnly)
    EXPECT_FALSE(scenarioMutatesNetwork(parseScenario(text))) << text;
  const char* const kMutating[] = {
      "churn 1.5 2", "repair", "compact",
      "churn 1.5 2\nrepair\nvalidate\nbroadcast random icff",
  };
  for (const char* text : kMutating)
    EXPECT_TRUE(scenarioMutatesNetwork(parseScenario(text))) << text;
}

TEST(ServeJob, DemoWorkloadIsWellFormed) {
  const auto jobs = demoJobs(64, 2007, 200, 8, 16, 4);
  ASSERT_EQ(jobs.size(), 64u);
  std::size_t mutating = 0;
  std::size_t heavy = 0;
  for (const auto& job : jobs) {
    EXPECT_FALSE(job.failed());
    EXPECT_FALSE(job.events.empty());
    if (job.mutates) ++mutating;
    if (job.nodes != 200) ++heavy;
  }
  EXPECT_EQ(mutating, 4u);  // every 16th
  EXPECT_EQ(heavy, 12u);    // every 4th, minus the mutating collisions
  // Deterministic: same arguments, same jobs.
  const auto again = demoJobs(64, 2007, 200, 8, 16, 4);
  for (std::size_t i = 0; i < jobs.size(); ++i)
    EXPECT_EQ(formatJobLine(jobs[i]), formatJobLine(again[i]));
}

}  // namespace
}  // namespace dsn::serve
