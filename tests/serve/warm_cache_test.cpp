// WarmStateCache: fingerprint-keyed hit/miss accounting, LRU eviction
// that never evicts a leased entry, bypass mode, pre-warmed CSR
// freshness, and one-build-per-fingerprint under concurrent leases.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/warm_cache.hpp"

namespace dsn::serve {
namespace {

NetworkConfig config(std::uint64_t seed, std::size_t nodes = 60) {
  NetworkConfig cfg;
  cfg.nodeCount = nodes;
  cfg.seed = seed;
  return cfg;
}

TEST(WarmStateCache, HitMissAccounting) {
  obs::MetricsRegistry reg;
  WarmStateCache cache(4, reg);
  EXPECT_EQ(cache.size(), 0u);

  const auto a = cache.lease(config(1));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(a.network().size(), 60u);

  const auto b = cache.lease(config(1));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(&a.network(), &b.network());  // same resident instance
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  const auto c = cache.lease(config(2));
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_NE(&a.network(), &c.network());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_DOUBLE_EQ(cache.stats().hitRate, 1.0 / 3.0);
}

TEST(WarmStateCache, CsrIsPreWarmed) {
  obs::MetricsRegistry reg;
  WarmStateCache cache(4, reg);
  for (int i = 0; i < 3; ++i) {
    const auto lease = cache.lease(config(7));
    EXPECT_NE(lease.network().graph().csrViewIfFresh(), nullptr);
  }
  EXPECT_EQ(cache.stats().csrFresh, 3u);
  EXPECT_EQ(cache.stats().csrStale, 0u);
}

TEST(WarmStateCache, EvictsLeastRecentlyUsed) {
  obs::MetricsRegistry reg;
  WarmStateCache cache(2, reg);
  cache.lease(config(1));
  cache.lease(config(2));
  cache.lease(config(1));  // refresh 1 -> 2 is now the LRU
  cache.lease(config(3));  // overflow: evicts 2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  cache.lease(config(1));  // still resident
  EXPECT_EQ(cache.stats().hits, 2u);
  cache.lease(config(2));  // was evicted -> rebuild
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(WarmStateCache, NeverEvictsALeasedEntry) {
  obs::MetricsRegistry reg;
  WarmStateCache cache(1, reg);
  const auto held = cache.lease(config(1));
  const auto also = cache.lease(config(2));  // overflow, but both leased
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_GE(cache.size(), 2u);  // transiently above capacity
  cache.lease(config(3));  // 3 evictable once its lease dies; 1 and 2 not
  EXPECT_EQ(&held.network(), &cache.lease(config(1)).network());
  EXPECT_EQ(&also.network(), &cache.lease(config(2)).network());
}

TEST(WarmStateCache, BypassModeAlwaysBuildsPrivately) {
  obs::MetricsRegistry reg;
  WarmStateCache cache(0, reg);
  const auto a = cache.lease(config(1));
  const auto b = cache.lease(config(1));
  EXPECT_NE(&a.network(), &b.network());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_DOUBLE_EQ(cache.stats().hitRate, 0.0);
}

TEST(WarmStateCache, ConcurrentLeasesBuildOnce) {
  obs::MetricsRegistry reg;
  WarmStateCache cache(8, reg);
  constexpr int kThreads = 8;
  std::vector<const SensorNetwork*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &seen, t] {
      // Everyone hammers two fingerprints; call_once must hand every
      // thread the same fully built instance per fingerprint.
      const auto lease = cache.lease(config(t % 2 == 0 ? 1 : 2));
      seen[static_cast<std::size_t>(t)] = &lease.network();
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 2; t < kThreads; ++t)
    EXPECT_EQ(seen[static_cast<std::size_t>(t)],
              seen[static_cast<std::size_t>(t % 2)]);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, static_cast<std::uint64_t>(kThreads - 2));
}

}  // namespace
}  // namespace dsn::serve
