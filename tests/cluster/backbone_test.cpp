// Backbone BT(G) structure and the Property-1 size relations.
#include <gtest/gtest.h>

#include "cluster/backbone.hpp"
#include "graph/algorithms.hpp"
#include "graph/domination.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

using testutil::buildNet;
using testutil::randomNet;

TEST(BackboneTest, InducedSubgraphContainsOnlyBackbone) {
  auto f = randomNet(81, 150);
  const Graph induced = backboneInducedSubgraph(*f.net);
  const auto backbone = f.net->backboneNodes();
  EXPECT_EQ(induced.liveCount(), backbone.size());
  for (NodeId v : backbone) EXPECT_TRUE(induced.isAlive(v));
  for (NodeId v : f.net->pureMembers()) EXPECT_FALSE(induced.isAlive(v));
}

TEST(BackboneTest, InducedSubgraphIsConnected) {
  // BT(G) is a subtree, so G(V_BT) (a supergraph of it) is connected.
  auto f = randomNet(82, 200);
  EXPECT_TRUE(isConnected(backboneInducedSubgraph(*f.net)));
}

TEST(BackboneTest, BackboneTreeEdgesPresent) {
  auto f = randomNet(83, 120);
  for (NodeId v : f.net->backboneNodes()) {
    if (v == f.net->root()) continue;
    EXPECT_TRUE(f.net->isBackbone(f.net->parent(v)))
        << "backbone node " << v << " parent is not backbone";
  }
}

TEST(BackboneTest, Property1SizeRelation) {
  // |BT| <= 2p - 1 where p = smallest clique cover of G; the greedy
  // clique cover upper-bounds... it upper-bounds the optimum from above,
  // so it cannot certify the paper bound directly. What we CAN check:
  // #clusters = #heads, |BT| = #heads + #gateways <= 2*#heads - 1
  // (every gateway has a head child below it and the root is a head).
  auto f = randomNet(84, 250);
  const std::size_t heads = f.net->clusterHeads().size();
  const std::size_t bt = f.net->backboneNodes().size();
  EXPECT_LE(bt, 2 * heads - 1);
}

TEST(BackboneTest, HeadsFormIndependentDominatingSet) {
  auto f = randomNet(85, 200);
  const auto heads = f.net->clusterHeads();
  EXPECT_TRUE(isIndependentSet(*f.graph, heads));
  EXPECT_TRUE(isDominatingSet(*f.graph, heads));
}

TEST(BackboneTest, UnitDiskClusterCountWithinConstantOfGreedyMds) {
  // Property 1(3): on unit-disk graphs #clusters <= 5 |MDS|. The greedy
  // DS is within O(log D) of optimal, so a generous constant applies to
  // it; this is a smoke check of the right order of magnitude, not a
  // certificate.
  auto f = randomNet(86, 300);
  const auto greedy = greedyDominatingSet(*f.graph);
  EXPECT_LE(f.net->clusterCount(), 5 * greedy.size() * 3);
  EXPECT_GE(f.net->clusterCount(), greedy.size() / 5);
}

TEST(BackboneTest, StatsAreInternallyConsistent) {
  auto f = randomNet(87, 180);
  const auto s = computeBackboneStats(*f.net);
  EXPECT_EQ(s.networkSize, f.net->netSize());
  EXPECT_EQ(s.backboneSize, f.net->backboneNodes().size());
  EXPECT_EQ(s.clusterCount, f.net->clusterCount());
  EXPECT_LE(s.backboneHeight, s.cnetHeight);
  EXPECT_LE(s.cnetHeight, s.backboneHeight + 1);  // leaves add <= 1 level
  EXPECT_LE(s.degreeBackbone, s.degreeG);
  EXPECT_EQ(s.cnetHeight, f.net->height());
  EXPECT_GE(s.bSlotBound(), s.maxBSlot);
  EXPECT_GE(s.lSlotBound(), s.maxLSlot);
}

TEST(BackboneTest, DegreeDMuchSmallerThanDOnDenseFields) {
  // Fig. 11's qualitative claim: d << D when the network is dense.
  auto f = randomNet(88, 300, 6, 60.0);
  const auto s = computeBackboneStats(*f.net);
  EXPECT_LT(s.degreeBackbone, s.degreeG);
}

TEST(BackboneTest, HeightMuchSmallerThanSize) {
  // Fig. 10's qualitative claim.
  auto f = randomNet(89, 300);
  const auto s = computeBackboneStats(*f.net);
  EXPECT_LT(static_cast<std::size_t>(s.backboneHeight),
            s.backboneSize / 2);
}

TEST(BackboneTest, EmptyAndSingletonStats) {
  Graph g(1);
  ClusterNet net(g);
  const auto s0 = computeBackboneStats(net);
  EXPECT_EQ(s0.networkSize, 0u);
  EXPECT_EQ(s0.backboneSize, 0u);

  net.moveIn(0);
  const auto s1 = computeBackboneStats(net);
  EXPECT_EQ(s1.networkSize, 1u);
  EXPECT_EQ(s1.backboneSize, 1u);
  EXPECT_EQ(s1.cnetHeight, 0);
  EXPECT_EQ(s1.clusterCount, 1u);
}

}  // namespace
}  // namespace dsn
