// DOT/summary export.
#include <gtest/gtest.h>

#include "cluster/export.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

TEST(ExportTest, DotContainsAllNodesAndTreeEdges) {
  Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(2, 3);
  g.addEdge(0, 2);
  ClusterNet net(g);
  net.buildAll({0, 1, 2, 3});

  const std::string dot = toDot(net);
  EXPECT_NE(dot.find("graph cnet {"), std::string::npos);
  for (NodeId v = 0; v < 4; ++v) {
    // Built via append (not operator+) to sidestep a GCC 12 -Wrestrict
    // false positive (PR105329) in the inlined string concatenation.
    std::string needle = "n";
    needle += std::to_string(v);
    needle += " [";
    EXPECT_NE(dot.find(needle), std::string::npos) << "node " << v;
  }
  // Every non-root contributes one tree edge line "nP -- nC;".
  std::size_t treeEdges = 0;
  std::size_t pos = 0;
  while ((pos = dot.find(" -- ", pos)) != std::string::npos) {
    ++treeEdges;
    pos += 4;
  }
  EXPECT_GE(treeEdges, 3u);  // 3 tree edges (+ maybe dotted radio edges)
}

TEST(ExportTest, DotMarksStatusesAndRoot) {
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  ClusterNet net(g);
  net.buildAll({0, 1, 2});  // head, gateway, head
  const std::string dot = toDot(net);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=lightblue"), std::string::npos);
}

TEST(ExportTest, RadioEdgesToggle) {
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  g.addEdge(1, 2);  // non-tree radio edge after construction
  ClusterNet net(g);
  net.buildAll({0, 1, 2});
  DotOptions with;
  DotOptions without;
  without.includeRadioEdges = false;
  EXPECT_NE(toDot(net, with).find("style=dotted"), std::string::npos);
  EXPECT_EQ(toDot(net, without).find("style=dotted"), std::string::npos);
}

TEST(ExportTest, SummaryMentionsKeyQuantities) {
  auto f = testutil::randomNet(4711, 80);
  const std::string s = toSummary(*f.net);
  EXPECT_NE(s.find("80 nodes"), std::string::npos);
  EXPECT_NE(s.find("backbone"), std::string::npos);
  EXPECT_NE(s.find("Delta="), std::string::npos);
}

TEST(ExportTest, DotParsesBalancedBraces) {
  auto f = testutil::randomNet(4712, 60);
  const std::string dot = toDot(*f.net);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
  EXPECT_EQ(dot.back(), '\n');
}

}  // namespace
}  // namespace dsn
