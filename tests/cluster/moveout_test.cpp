// node-move-out semantics: detachment, re-insertion, repairs, orphans,
// and invariant preservation under random churn.
#include <gtest/gtest.h>

#include "cluster/backbone.hpp"
#include "cluster/validate.hpp"
#include "graph/algorithms.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

using testutil::buildNet;
using testutil::randomNet;
using testutil::validationErrors;

TEST(MoveOutTest, LeafMemberLeavesCleanly) {
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  ClusterNet net(g);
  net.buildAll({0, 1, 2});
  const auto report = net.moveOut(2);
  EXPECT_EQ(report.subtreeSize, 0u);
  EXPECT_EQ(report.orphaned, 0u);
  EXPECT_FALSE(net.contains(2));
  EXPECT_FALSE(g.isAlive(2));
  EXPECT_EQ(net.netSize(), 2u);
  EXPECT_EQ(validationErrors(net), "");
}

TEST(MoveOutTest, InternalNodeSubtreeIsReinserted) {
  // Path 0-1-2-3-4 plus a shortcut 1-3 edge... build a line then remove
  // the middle: descendants must re-attach through the remaining graph.
  Graph g(5);
  for (NodeId v = 0; v + 1 < 5; ++v) g.addEdge(v, v + 1);
  g.addEdge(1, 3);  // keeps G connected when 2 leaves
  ClusterNet net(g);
  net.buildAll({0, 1, 2, 3, 4});
  const auto report = net.moveOut(2);
  EXPECT_EQ(report.subtreeSize, 2u);  // 3 and 4 hung below 2
  EXPECT_EQ(report.orphaned, 0u);
  EXPECT_EQ(net.netSize(), 4u);
  EXPECT_TRUE(net.contains(3));
  EXPECT_TRUE(net.contains(4));
  EXPECT_FALSE(g.isAlive(2));
  EXPECT_EQ(validationErrors(net), "");
}

TEST(MoveOutTest, DisconnectionOrphansUnreachableSubtree) {
  // Pure path: removing the middle node splits G; the far side cannot
  // re-attach and is orphaned (left in the graph, out of the net).
  Graph g(5);
  for (NodeId v = 0; v + 1 < 5; ++v) g.addEdge(v, v + 1);
  ClusterNet net(g);
  net.buildAll({0, 1, 2, 3, 4});
  const auto report = net.moveOut(2);
  EXPECT_EQ(report.subtreeSize, 2u);
  EXPECT_EQ(report.orphaned, 2u);
  EXPECT_FALSE(net.contains(3));
  EXPECT_FALSE(net.contains(4));
  EXPECT_TRUE(g.isAlive(3));  // still deployed, just unreachable
  EXPECT_EQ(net.netSize(), 2u);
  EXPECT_EQ(validationErrors(net), "");
}

TEST(MoveOutTest, RootDepartureReseeds) {
  Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  g.addEdge(1, 2);
  g.addEdge(2, 3);
  ClusterNet net(g);
  net.buildAll({0, 1, 2, 3});
  ASSERT_EQ(net.root(), 0u);
  const auto report = net.moveOut(0);
  EXPECT_EQ(report.subtreeSize, 3u);
  EXPECT_EQ(report.orphaned, 0u);
  EXPECT_EQ(net.netSize(), 3u);
  EXPECT_NE(net.root(), kInvalidNode);
  EXPECT_NE(net.root(), 0u);
  EXPECT_FALSE(g.isAlive(0));
  EXPECT_EQ(net.status(net.root()), NodeStatus::kClusterHead);
  EXPECT_EQ(net.depth(net.root()), 0);
  EXPECT_EQ(validationErrors(net), "");
}

TEST(MoveOutTest, SingleNodeNetworkEmpties) {
  Graph g(1);
  ClusterNet net(g);
  net.moveIn(0);
  const auto report = net.moveOut(0);
  EXPECT_EQ(report.subtreeSize, 0u);
  EXPECT_EQ(net.netSize(), 0u);
  EXPECT_EQ(net.root(), kInvalidNode);
  EXPECT_EQ(validationErrors(net), "");
}

TEST(MoveOutTest, MoveOutOfOutsiderRejected) {
  Graph g(2);
  g.addEdge(0, 1);
  ClusterNet net(g);
  net.moveIn(0);
  EXPECT_THROW(net.moveOut(1), PreconditionError);
}

struct ChurnParam {
  std::uint64_t seed;
  std::size_t n;
  int removals;
  SlotPolicy policy;
};

class MoveOutChurn : public ::testing::TestWithParam<ChurnParam> {};

TEST_P(MoveOutChurn, InvariantsSurviveRandomRemovals) {
  const auto p = GetParam();
  ClusterNetConfig cfg;
  cfg.slotPolicy = p.policy;
  auto f = randomNet(p.seed, p.n, 10, 50.0, cfg);
  Rng rng(p.seed ^ 0xDEAD);
  for (int step = 0; step < p.removals; ++step) {
    const auto nodes = f.net->netNodes();
    if (nodes.size() <= 1) break;
    const NodeId victim = nodes[rng.pickIndex(nodes)];
    f.net->moveOut(victim);
    const auto report = ClusterNetValidator::validate(*f.net);
    ASSERT_TRUE(report.ok())
        << "after removing node " << victim << " (step " << step << "):\n"
        << report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Churn, MoveOutChurn,
    ::testing::Values(ChurnParam{11, 80, 30, SlotPolicy::kStrict},
                      ChurnParam{12, 120, 40, SlotPolicy::kStrict},
                      ChurnParam{13, 60, 59, SlotPolicy::kStrict},
                      ChurnParam{14, 100, 35, SlotPolicy::kPaperLocal},
                      ChurnParam{15, 150, 25, SlotPolicy::kStrict}));

TEST(MoveOutTest, ChurnWithRejoins) {
  // Nodes leave and fresh nodes join at the same positions — the net must
  // stay valid through interleaved move-in/move-out. Fresh ids are used
  // for joins (graph ids are never recycled).
  auto f = randomNet(21, 90);
  Rng rng(99);
  UnitDiskIndex idx(50.0);
  for (NodeId v = 0; v < f.points.size(); ++v) idx.insert(v, f.points[v]);

  for (int step = 0; step < 25; ++step) {
    // Remove a random node.
    const auto nodes = f.net->netNodes();
    const NodeId victim = nodes[rng.pickIndex(nodes)];
    const Point2D pos = idx.position(victim);
    f.net->moveOut(victim);
    idx.remove(victim);

    // A new sensor is deployed near the old position.
    const NodeId fresh = f.graph->addNode();
    const Point2D p2{pos.x + rng.uniformReal(-5, 5),
                     pos.y + rng.uniformReal(-5, 5)};
    for (NodeId nb : idx.queryNeighbors(p2)) {
      if (f.graph->isAlive(nb)) f.graph->addEdge(fresh, nb);
    }
    idx.insert(fresh, p2);
    if (!f.graph->neighbors(fresh).empty()) {
      // Only join when connected to the existing deployment.
      bool hasNetNeighbor = false;
      for (NodeId nb : f.graph->neighbors(fresh))
        hasNetNeighbor |= f.net->contains(nb);
      if (hasNetNeighbor) f.net->moveIn(fresh);
    }
    const auto report = ClusterNetValidator::validate(*f.net);
    ASSERT_TRUE(report.ok()) << "step " << step << ":\n"
                             << report.summary();
  }
}

TEST(MoveOutTest, CostGrowsWithSubtreeSize) {
  // Theorem 3: O(h + |T| D^2). Removing the root's child with the largest
  // subtree must cost at least as many rounds as removing a leaf.
  auto f = randomNet(33, 150);
  // Find a deep internal node and a leaf.
  NodeId bigInternal = kInvalidNode;
  std::size_t bigSize = 0;
  NodeId leaf = kInvalidNode;
  for (NodeId v : f.net->netNodes()) {
    if (v == f.net->root()) continue;
    if (f.net->children(v).empty()) {
      leaf = v;
    } else {
      // estimate subtree size via height as proxy; collect true size
      std::size_t size = 0;
      std::vector<NodeId> stack{v};
      while (!stack.empty()) {
        const NodeId x = stack.back();
        stack.pop_back();
        ++size;
        for (NodeId c : f.net->children(x)) stack.push_back(c);
      }
      if (size > bigSize) {
        bigSize = size;
        bigInternal = v;
      }
    }
  }
  ASSERT_NE(leaf, kInvalidNode);
  ASSERT_NE(bigInternal, kInvalidNode);
  ASSERT_GT(bigSize, 3u);

  const auto leafReport = f.net->moveOut(leaf);
  const auto bigReport = f.net->moveOut(bigInternal);
  EXPECT_GT(bigReport.cost.total(), leafReport.cost.total());
  EXPECT_EQ(validationErrors(*f.net), "");
}

}  // namespace
}  // namespace dsn
