// MCNet(G): multicast group-lists and relay-lists (paper Section 3.4)
// and their maintenance across reconfigurations (Section 5).
#include <gtest/gtest.h>

#include "cluster/validate.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

using testutil::randomNet;
using testutil::validationErrors;

TEST(McnetTest, JoinPropagatesRelayToAncestors) {
  // Line 0-1-2-3-4: deep chain; joining a group at the end marks every
  // ancestor as relay.
  Graph g(5);
  for (NodeId v = 0; v + 1 < 5; ++v) g.addEdge(v, v + 1);
  ClusterNet net(g);
  net.buildAll({0, 1, 2, 3, 4});
  net.joinGroup(4, 7);
  EXPECT_TRUE(net.inGroup(4, 7));
  EXPECT_FALSE(net.relaysGroup(4, 7));  // relay = strict descendants only
  for (NodeId v : {0u, 1u, 2u, 3u}) {
    EXPECT_TRUE(net.relaysGroup(v, 7)) << "ancestor " << v;
    EXPECT_FALSE(net.inGroup(v, 7));
  }
  EXPECT_EQ(validationErrors(net), "");
}

TEST(McnetTest, LeaveWithdrawsRelay) {
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  ClusterNet net(g);
  net.buildAll({0, 1, 2});
  net.joinGroup(2, 1);
  ASSERT_TRUE(net.relaysGroup(0, 1));
  net.leaveGroup(2, 1);
  EXPECT_FALSE(net.relaysGroup(0, 1));
  EXPECT_FALSE(net.inGroup(2, 1));
  EXPECT_EQ(validationErrors(net), "");
}

TEST(McnetTest, DuplicateJoinAndLeaveAreIdempotent) {
  Graph g(2);
  g.addEdge(0, 1);
  ClusterNet net(g);
  net.buildAll({0, 1});
  net.joinGroup(1, 3);
  net.joinGroup(1, 3);
  EXPECT_EQ(net.knowledge(0).relayCount.at(3), 1);
  net.leaveGroup(1, 3);
  net.leaveGroup(1, 3);
  EXPECT_FALSE(net.relaysGroup(0, 3));
  EXPECT_EQ(validationErrors(net), "");
}

TEST(McnetTest, MultipleGroupsCoexist) {
  Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  g.addEdge(2, 3);
  ClusterNet net(g);
  net.buildAll({0, 1, 2, 3});
  net.joinGroup(1, 10);
  net.joinGroup(3, 20);
  net.joinGroup(3, 10);
  EXPECT_TRUE(net.relaysGroup(0, 10));
  EXPECT_TRUE(net.relaysGroup(0, 20));
  EXPECT_TRUE(net.relaysGroup(2, 10));
  EXPECT_TRUE(net.relaysGroup(2, 20));
  EXPECT_FALSE(net.relaysGroup(1, 20));
  const auto relays = net.relayListOf(0);
  EXPECT_EQ(relays, (std::vector<GroupId>{10, 20}));
  EXPECT_EQ(validationErrors(net), "");
}

TEST(McnetTest, RelayCountsSurviveMoveOut) {
  Graph g(5);
  for (NodeId v = 0; v + 1 < 5; ++v) g.addEdge(v, v + 1);
  g.addEdge(1, 3);  // alternate route around node 2
  ClusterNet net(g);
  net.buildAll({0, 1, 2, 3, 4});
  net.joinGroup(4, 5);
  ASSERT_TRUE(net.relaysGroup(0, 5));
  net.moveOut(2);
  // Node 4 keeps its membership and is re-homed; ancestors on the NEW
  // path must relay.
  ASSERT_TRUE(net.contains(4));
  EXPECT_TRUE(net.inGroup(4, 5));
  NodeId a = net.parent(4);
  while (a != kInvalidNode) {
    EXPECT_TRUE(net.relaysGroup(a, 5)) << "ancestor " << a;
    a = net.parent(a);
  }
  EXPECT_EQ(validationErrors(net), "");
}

TEST(McnetTest, DepartingMemberRemovesItsContribution) {
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  ClusterNet net(g);
  net.buildAll({0, 1, 2});
  net.joinGroup(1, 9);
  net.joinGroup(2, 9);
  ASSERT_EQ(net.knowledge(0).relayCount.at(9), 2);
  net.moveOut(1);
  EXPECT_EQ(net.knowledge(0).relayCount.at(9), 1);
  EXPECT_EQ(validationErrors(net), "");
}

TEST(McnetTest, RandomChurnKeepsRelayCountsExact) {
  auto f = randomNet(91, 100);
  Rng rng(91);
  // Scatter three groups over the network.
  for (NodeId v : f.net->netNodes()) {
    if (rng.chance(0.3)) f.net->joinGroup(v, 1);
    if (rng.chance(0.2)) f.net->joinGroup(v, 2);
    if (rng.chance(0.1)) f.net->joinGroup(v, 3);
  }
  ASSERT_EQ(validationErrors(*f.net), "");
  for (int step = 0; step < 15; ++step) {
    const auto nodes = f.net->netNodes();
    if (nodes.size() <= 2) break;
    f.net->moveOut(nodes[rng.pickIndex(nodes)]);
    // validate() brute-force recomputes descendant counts.
    ASSERT_EQ(validationErrors(*f.net), "") << "step " << step;
  }
}

TEST(McnetTest, GroupOpsOnOutsiderRejected) {
  Graph g(2);
  g.addEdge(0, 1);
  ClusterNet net(g);
  net.moveIn(0);
  EXPECT_THROW(net.joinGroup(1, 0), PreconditionError);
  EXPECT_THROW(net.relaysGroup(1, 0), PreconditionError);
}

TEST(McnetTest, RootDepartureKeepsMemberships) {
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(0, 2);
  ClusterNet net(g);
  net.buildAll({0, 1, 2});
  net.joinGroup(2, 4);
  net.moveOut(net.root());
  ASSERT_TRUE(net.contains(2));
  EXPECT_TRUE(net.inGroup(2, 4));
  EXPECT_EQ(validationErrors(net), "");
}

}  // namespace
}  // namespace dsn
