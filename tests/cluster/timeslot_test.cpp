// Time-slot machinery: conditions, interferer sets, lazy assignment,
// Lemma 2/3 bounds and the root's monotone knowledge.
#include <gtest/gtest.h>

#include "cluster/backbone.hpp"
#include "cluster/validate.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

using testutil::buildNet;
using testutil::randomNet;

TEST(TimeSlotTest, SingleClusterAssignsHeadLSlot) {
  // Star: head 0 with members. The head needs an l-slot so members can
  // receive; no b/u conflicts exist.
  const auto pts = deployStar(5, 50.0);
  auto f = buildNet(pts, 50.0);
  EXPECT_NE(f.net->lSlot(0), kNoSlot);
  for (NodeId v = 1; v < 5; ++v) {
    EXPECT_TRUE(f.net->lConditionHolds(v));
    EXPECT_EQ(f.net->lInterferers(v), std::vector<NodeId>{0});
  }
}

TEST(TimeSlotTest, LazySlots_FreshHeadHasNone) {
  // Path 0-1-2: node 2 is a fresh head with no children; it needs no
  // l-slot of its own (nothing to serve) — slots appear on demand.
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  ClusterNet net(g);
  net.buildAll({0, 1, 2});
  EXPECT_EQ(net.lSlot(2), kNoSlot);
  EXPECT_EQ(net.uSlot(2), kNoSlot);
  // But its ancestors transmit: 1 (gateway) must hold b/u slots so 2 can
  // receive the floods.
  EXPECT_NE(net.bSlot(1), kNoSlot);
  EXPECT_NE(net.uSlot(1), kNoSlot);
  EXPECT_TRUE(net.bConditionHolds(2));
  EXPECT_TRUE(net.uConditionHolds(2));
}

TEST(TimeSlotTest, SlotAppearsWhenFirstChildArrives) {
  Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(2, 3);
  ClusterNet net(g);
  net.buildAll({0, 1, 2});
  ASSERT_EQ(net.lSlot(2), kNoSlot);
  net.moveIn(3);  // member under head 2
  EXPECT_NE(net.lSlot(2), kNoSlot);
  EXPECT_TRUE(net.lConditionHolds(3));
}

TEST(TimeSlotTest, InterfererSetsMatchDefinition) {
  auto f = randomNet(71, 120);
  const auto& net = *f.net;
  const auto& g = *f.graph;
  for (NodeId v : net.netNodes()) {
    if (net.isBackbone(v) && net.depth(v) > 0) {
      for (NodeId u : net.bInterferers(v)) {
        EXPECT_TRUE(g.hasEdge(u, v));
        EXPECT_TRUE(net.isBackbone(u));
        EXPECT_EQ(net.depth(u), net.depth(v) - 1);
      }
    }
    if (net.status(v) == NodeStatus::kPureMember) {
      for (NodeId u : net.lInterferers(v)) {
        EXPECT_TRUE(g.hasEdge(u, v));
        EXPECT_TRUE(net.isBackbone(u));  // strict: any backbone neighbor
      }
      // Parent is always in the interferer set.
      const auto inter = net.lInterferers(v);
      EXPECT_NE(std::find(inter.begin(), inter.end(), net.parent(v)),
                inter.end());
    }
  }
}

TEST(TimeSlotTest, PaperLocalRestrictsToPreviousDepth) {
  ClusterNetConfig cfg;
  cfg.slotPolicy = SlotPolicy::kPaperLocal;
  auto f = randomNet(72, 120, 10, 50.0, cfg);
  const auto& net = *f.net;
  for (NodeId v : net.netNodes()) {
    if (net.status(v) != NodeStatus::kPureMember) continue;
    for (NodeId u : net.lInterferers(v))
      EXPECT_EQ(net.depth(u), net.depth(v) - 1);
  }
}

TEST(TimeSlotTest, StrictPolicyNeverLoosensConditions) {
  // Strict interferer sets are supersets; any strict-valid assignment
  // also satisfies the paper-local condition.
  auto f = randomNet(73, 150);
  const auto& net = *f.net;
  for (NodeId v : net.netNodes()) {
    if (net.status(v) == NodeStatus::kPureMember) {
      EXPECT_TRUE(net.lConditionHolds(v));
    } else if (v != net.root()) {
      EXPECT_TRUE(net.bConditionHolds(v));
    }
    if (v != net.root()) {
      EXPECT_TRUE(net.uConditionHolds(v));
    }
  }
}

TEST(TimeSlotTest, RootKnowledgeIsMonotoneUpperBound) {
  auto f = randomNet(74, 100);
  // The root's knowledge is a sound upper bound; it may exceed the true
  // maxima when a recalculation shrank some node's slot (the paper only
  // ever reports increases to the root).
  EXPECT_GE(f.net->rootMaxBSlot(), f.net->trueMaxBSlot());
  EXPECT_GE(f.net->rootMaxLSlot(), f.net->trueMaxLSlot());
  EXPECT_GE(f.net->rootMaxUSlot(), f.net->trueMaxUSlot());
  EXPECT_GT(f.net->rootMaxLSlot(), 0u);
}

TEST(TimeSlotTest, RootKnowledgeStaysUpperBoundUnderChurn) {
  auto f = randomNet(75, 90);
  Rng rng(75);
  for (int i = 0; i < 20; ++i) {
    const auto nodes = f.net->netNodes();
    if (nodes.size() <= 2) break;
    f.net->moveOut(nodes[rng.pickIndex(nodes)]);
    EXPECT_GE(f.net->rootMaxBSlot(), f.net->trueMaxBSlot());
    EXPECT_GE(f.net->rootMaxLSlot(), f.net->trueMaxLSlot());
    EXPECT_GE(f.net->rootMaxUSlot(), f.net->trueMaxUSlot());
  }
}

TEST(TimeSlotTest, LemmaBoundsHoldOnDenseNetworks) {
  // Dense field stresses the slot count.
  auto f = randomNet(76, 120, 3, 80.0);
  const auto stats = computeBackboneStats(*f.net);
  EXPECT_LE(stats.maxBSlot, stats.bSlotBound());
  EXPECT_LE(stats.maxLSlot, stats.lSlotBound());
  EXPECT_LE(stats.maxUSlot, stats.lSlotBound());
}

TEST(TimeSlotTest, SlotsAreSmallIntegers) {
  // Procedure 1 picks minimum free slots, so assignments stay compact:
  // every assigned slot is within 1..(#backbone nodes).
  auto f = randomNet(77, 200);
  const auto backbone = f.net->backboneNodes();
  for (NodeId v : backbone) {
    if (f.net->bSlot(v) != kNoSlot) {
      EXPECT_LE(f.net->bSlot(v), backbone.size());
    }
    if (f.net->lSlot(v) != kNoSlot) {
      EXPECT_LE(f.net->lSlot(v), backbone.size());
    }
  }
}

TEST(TimeSlotTest, ConditionQueriesValidateStatus) {
  Graph g(2);
  g.addEdge(0, 1);
  ClusterNet net(g);
  net.buildAll({0, 1});
  // 1 is a pure member: asking for its b-condition is a contract error.
  EXPECT_THROW(net.bConditionHolds(1), PreconditionError);
  // Root does not receive.
  EXPECT_THROW(net.uConditionHolds(0), PreconditionError);
  EXPECT_THROW(net.lConditionHolds(0), PreconditionError);
}

}  // namespace
}  // namespace dsn
