// withdraw() vs moveOut(): structure-only departures and re-entry.
#include <gtest/gtest.h>

#include "cluster/validate.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

using testutil::randomNet;
using testutil::validationErrors;

TEST(WithdrawTest, NodeStaysInGraph) {
  auto f = randomNet(6001, 80);
  const auto nodes = f.net->netNodes();
  const NodeId v = nodes[nodes.size() / 2];
  f.net->withdraw(v);
  EXPECT_FALSE(f.net->contains(v));
  EXPECT_TRUE(f.graph->isAlive(v));  // the difference to moveOut
  EXPECT_EQ(validationErrors(*f.net), "");
}

TEST(WithdrawTest, WithdrawnNodeCanRejoin) {
  auto f = randomNet(6002, 80);
  const auto nodes = f.net->netNodes();
  const NodeId v = nodes[nodes.size() / 3];
  const std::size_t before = f.net->netSize();
  const auto report = f.net->withdraw(v);
  EXPECT_EQ(f.net->netSize(), before - 1 - report.orphaned);
  f.net->moveIn(v);
  EXPECT_TRUE(f.net->contains(v));
  EXPECT_EQ(validationErrors(*f.net), "");
}

TEST(WithdrawTest, GroupsSurviveTheRoundTrip) {
  auto f = randomNet(6003, 60);
  const NodeId v = f.net->pureMembers().front();
  f.net->joinGroup(v, 9);
  f.net->withdraw(v);
  f.net->moveIn(v);
  EXPECT_TRUE(f.net->inGroup(v, 9));
  // Relay lists on the (possibly new) root path are consistent.
  EXPECT_EQ(validationErrors(*f.net), "");
}

TEST(WithdrawTest, RootWithdrawalReseeds) {
  auto f = randomNet(6004, 70);
  const NodeId oldRoot = f.net->root();
  f.net->withdraw(oldRoot);
  EXPECT_TRUE(f.graph->isAlive(oldRoot));
  EXPECT_NE(f.net->root(), oldRoot);
  EXPECT_EQ(validationErrors(*f.net), "");
  // The old root can come back — as an ordinary node.
  f.net->moveIn(oldRoot);
  EXPECT_TRUE(f.net->contains(oldRoot));
  EXPECT_NE(f.net->root(), oldRoot);
  EXPECT_EQ(validationErrors(*f.net), "");
}

TEST(WithdrawTest, MoveOutAlsoRemovesFromGraph) {
  auto f = randomNet(6005, 50);
  const auto nodes = f.net->netNodes();
  const NodeId v = nodes[5] == f.net->root() ? nodes[6] : nodes[5];
  f.net->moveOut(v);
  EXPECT_FALSE(f.net->contains(v));
  EXPECT_FALSE(f.graph->isAlive(v));
  EXPECT_THROW(f.net->moveIn(v), PreconditionError);  // gone for good
}

TEST(WithdrawTest, RepeatedCycleIsStable) {
  auto f = randomNet(6006, 90);
  Rng rng(6006);
  for (int i = 0; i < 20; ++i) {
    const auto nodes = f.net->netNodes();
    const NodeId v = nodes[rng.pickIndex(nodes)];
    f.net->withdraw(v);
    ASSERT_EQ(validationErrors(*f.net), "") << "after withdraw " << v;
    // Rejoin immediately when reachable.
    bool reachable = false;
    for (NodeId u : f.graph->neighbors(v))
      reachable |= f.net->contains(u);
    if (reachable) {
      f.net->moveIn(v);
      ASSERT_EQ(validationErrors(*f.net), "") << "after rejoin " << v;
    }
  }
}

}  // namespace
}  // namespace dsn
