// Shared helpers for cluster-net tests.
#pragma once

#include <memory>
#include <vector>

#include "cluster/cnet.hpp"
#include "cluster/validate.hpp"
#include "graph/deploy.hpp"
#include "graph/unit_disk.hpp"
#include "util/rng.hpp"

namespace dsn::testutil {

/// A graph + cluster-net pair with shared lifetime for tests.
struct NetFixture {
  std::unique_ptr<Graph> graph;
  std::unique_ptr<ClusterNet> net;
  std::vector<Point2D> points;
};

/// Builds the unit-disk graph over `pts` and move-ins nodes 0..n-1 in
/// order (deployIncrementalAttach guarantees that order is insertable).
inline NetFixture buildNet(std::vector<Point2D> pts, double range,
                           ClusterNetConfig cfg = {}) {
  NetFixture f;
  f.points = std::move(pts);
  f.graph = std::make_unique<Graph>(buildUnitDiskGraph(f.points, range));
  f.net = std::make_unique<ClusterNet>(*f.graph, cfg);
  for (NodeId v = 0; v < f.points.size(); ++v) f.net->moveIn(v);
  return f;
}

/// Paper-style random connected deployment.
inline NetFixture randomNet(std::uint64_t seed, std::size_t n,
                            int fieldUnits = 10, double range = 50.0,
                            ClusterNetConfig cfg = {}) {
  Rng rng(seed);
  const DeployConfig dc{Field::squareUnits(fieldUnits), range, n};
  return buildNet(deployIncrementalAttach(dc, rng), range, cfg);
}

/// gtest-friendly validation: empty string when the structure is sound.
inline std::string validationErrors(const ClusterNet& net) {
  return ClusterNetValidator::validate(net).summary();
}

}  // namespace dsn::testutil
