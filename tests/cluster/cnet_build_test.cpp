// Definition-1 construction semantics on deterministic topologies.
#include <gtest/gtest.h>

#include "cluster/cnet.hpp"
#include "cluster/validate.hpp"
#include "graph/deploy.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

using testutil::buildNet;
using testutil::validationErrors;

TEST(CNetBuildTest, FirstNodeBecomesRootHead) {
  Graph g(1);
  ClusterNet net(g);
  EXPECT_EQ(net.moveIn(0), kInvalidNode);
  EXPECT_EQ(net.root(), 0u);
  EXPECT_EQ(net.status(0), NodeStatus::kClusterHead);
  EXPECT_EQ(net.depth(0), 0);
  EXPECT_EQ(net.height(), 0);
  EXPECT_EQ(net.netSize(), 1u);
  EXPECT_EQ(validationErrors(net), "");
}

TEST(CNetBuildTest, CaseA_JoinUnderHead) {
  // new is adjacent to the root head -> pure member (Fig. 2a).
  Graph g(2);
  g.addEdge(0, 1);
  ClusterNet net(g);
  net.moveIn(0);
  EXPECT_EQ(net.moveIn(1), 0u);
  EXPECT_EQ(net.status(1), NodeStatus::kPureMember);
  EXPECT_EQ(net.parent(1), 0u);
  EXPECT_EQ(net.depth(1), 1);
  EXPECT_EQ(net.height(), 1);
  EXPECT_EQ(validationErrors(net), "");
}

TEST(CNetBuildTest, CaseC_PromotionCreatesGatewayAndNewHead) {
  // Path 0-1-2: node 2 sees only pure-member 1, which gets promoted
  // (Fig. 2c).
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  ClusterNet net(g);
  net.buildAll({0, 1, 2});
  EXPECT_EQ(net.status(0), NodeStatus::kClusterHead);
  EXPECT_EQ(net.status(1), NodeStatus::kGateway);
  EXPECT_EQ(net.status(2), NodeStatus::kClusterHead);
  EXPECT_EQ(net.parent(2), 1u);
  EXPECT_EQ(net.clusterCount(), 2u);
  EXPECT_EQ(validationErrors(net), "");
}

TEST(CNetBuildTest, CaseB_JoinUnderGateway) {
  // Path 0-1-2 plus node 3 adjacent only to gateway 1 -> 3 becomes a head
  // under the gateway (Fig. 2b).
  Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(1, 3);
  ClusterNet net(g);
  net.buildAll({0, 1, 2, 3});
  EXPECT_EQ(net.status(3), NodeStatus::kClusterHead);
  EXPECT_EQ(net.parent(3), 1u);
  EXPECT_EQ(net.clusterCount(), 3u);
  EXPECT_EQ(validationErrors(net), "");
}

TEST(CNetBuildTest, HeadPreferredOverGatewayAndMember) {
  // Node 4 is adjacent to head 0, gateway 1 and member 5; it must join
  // head 0 (Definition 1 priority).
  Graph g(6);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(0, 5);
  g.addEdge(4, 0);
  g.addEdge(4, 1);
  g.addEdge(4, 5);
  ClusterNet net(g);
  net.buildAll({0, 1, 2, 5, 4});
  EXPECT_EQ(net.status(4), NodeStatus::kPureMember);
  EXPECT_EQ(net.parent(4), 0u);
  EXPECT_EQ(validationErrors(net), "");
}

TEST(CNetBuildTest, GatewayPreferredOverMember) {
  Graph g(5);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(2, 3);  // member 3 of head 2
  g.addEdge(4, 1);  // 4 sees gateway 1...
  g.addEdge(4, 3);  // ...and member 3
  ClusterNet net(g);
  net.buildAll({0, 1, 2, 3, 4});
  EXPECT_EQ(net.status(4), NodeStatus::kClusterHead);
  EXPECT_EQ(net.parent(4), 1u);          // gateway chosen
  EXPECT_EQ(net.status(3), NodeStatus::kPureMember);  // not promoted
  EXPECT_EQ(validationErrors(net), "");
}

TEST(CNetBuildTest, MoveInRequiresNetNeighbor) {
  Graph g(3);
  g.addEdge(0, 1);
  ClusterNet net(g);
  net.moveIn(0);
  EXPECT_THROW(net.moveIn(2), PreconditionError);  // isolated from net
}

TEST(CNetBuildTest, MoveInTwiceRejected) {
  Graph g(2);
  g.addEdge(0, 1);
  ClusterNet net(g);
  net.moveIn(0);
  EXPECT_THROW(net.moveIn(0), PreconditionError);
}

TEST(CNetBuildTest, LineTopologyAlternatesHeadGateway) {
  // A path inserted left-to-right: statuses follow
  // head, gw, head, gw, ... and depth equals index.
  const auto pts = deployLine(7, 50.0);
  auto f = buildNet(pts, 50.0);
  for (NodeId v = 0; v < 7; ++v) {
    EXPECT_EQ(f.net->depth(v), static_cast<Depth>(v));
    if (v % 2 == 0)
      EXPECT_EQ(f.net->status(v), NodeStatus::kClusterHead) << v;
    else
      EXPECT_EQ(f.net->status(v), NodeStatus::kGateway) << v;
  }
  EXPECT_EQ(f.net->height(), 6);
  EXPECT_EQ(validationErrors(*f.net), "");
}

TEST(CNetBuildTest, StarTopologyIsOneCluster) {
  const auto pts = deployStar(6, 50.0);
  auto f = buildNet(pts, 50.0);
  EXPECT_EQ(f.net->clusterCount(), 1u);
  EXPECT_EQ(f.net->backboneNodes(), std::vector<NodeId>{0});
  for (NodeId v = 1; v < 6; ++v)
    EXPECT_EQ(f.net->status(v), NodeStatus::kPureMember);
  EXPECT_EQ(f.net->height(), 1);
  EXPECT_EQ(validationErrors(*f.net), "");
}

TEST(CNetBuildTest, ClusterMembersListsChildren) {
  Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  g.addEdge(1, 3);  // promotes 1
  ClusterNet net(g);
  net.buildAll({0, 1, 2, 3});
  const auto members = net.clusterMembers(0);
  EXPECT_EQ(members, (std::vector<NodeId>{1, 2}));  // gateway + member
  EXPECT_THROW(net.clusterMembers(1), PreconditionError);  // not a head
}

TEST(CNetBuildTest, AttachPreferenceRandomStillValid) {
  ClusterNetConfig cfg;
  cfg.attachPreference = AttachPreference::kRandom;
  cfg.attachSeed = 99;
  auto f = testutil::randomNet(4242, 120, 8, 60.0, cfg);
  EXPECT_EQ(validationErrors(*f.net), "");
}

TEST(CNetBuildTest, AttachPreferenceBestScore) {
  Graph g(4);
  // Node 3 adjacent to heads 0 and 2; score prefers 2.
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(3, 0);
  g.addEdge(3, 2);
  ClusterNetConfig cfg;
  cfg.attachPreference = AttachPreference::kBestScore;
  cfg.score = [](NodeId v) { return static_cast<double>(v); };
  ClusterNet net(g, cfg);
  net.buildAll({0, 1, 2, 3});
  EXPECT_EQ(net.parent(3), 2u);
  EXPECT_EQ(validationErrors(net), "");
}

TEST(CNetBuildTest, BestScoreWithoutCallbackRejected) {
  Graph g(1);
  ClusterNetConfig cfg;
  cfg.attachPreference = AttachPreference::kBestScore;
  EXPECT_THROW(ClusterNet(g, cfg), PreconditionError);
}

TEST(CNetBuildTest, QueriesOnOutsiderThrow) {
  Graph g(2);
  g.addEdge(0, 1);
  ClusterNet net(g);
  net.moveIn(0);
  EXPECT_THROW(net.status(1), PreconditionError);
  EXPECT_THROW(net.depth(1), PreconditionError);
  EXPECT_THROW(net.parent(1), PreconditionError);
}

}  // namespace
}  // namespace dsn
