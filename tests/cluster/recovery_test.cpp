// RecoveryManager (DESIGN.md §10): crash-fault detection, pruning,
// re-attachment and slot repair — plus the end-to-end acceptance
// property: crash a chunk of the backbone, repair, and a reliable iCFF
// wave reaches every alive node of the surviving structure, with results
// bit-identical at every worker count.
#include "cluster/recovery.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/sensor_network.hpp"
#include "exec/parallel_sweep.hpp"

namespace dsn {
namespace {

NetworkConfig smallConfig(std::uint64_t seed, std::size_t n = 80) {
  NetworkConfig cfg;
  cfg.nodeCount = n;
  cfg.seed = seed;
  return cfg;
}

TEST(RecoveryTest, CleanStructureNeedsNoRepair) {
  SensorNetwork net(smallConfig(9001));
  EXPECT_FALSE(net.hasStaleStructure());
  const RecoveryReport rep = net.repairAfterFailures();
  EXPECT_FALSE(rep.anyDamage());
  EXPECT_EQ(rep.staleRemoved, 0u);
  EXPECT_EQ(rep.reattached, 0u);
  // Detection is not free: the heartbeat sweep is charged even when
  // everyone turns out to be alive.
  EXPECT_GT(rep.cost.heartbeat, 0);
  EXPECT_TRUE(net.validate().ok());
}

TEST(RecoveryTest, CrashLeavesStructureStaleUntilRepaired) {
  SensorNetwork net(smallConfig(9002));
  std::vector<NodeId> backbone = net.clusterNet().backboneNodes();
  std::erase(backbone, net.clusterNet().root());
  ASSERT_FALSE(backbone.empty());
  const NodeId victim = backbone.front();

  net.crashSensor(victim);
  EXPECT_TRUE(net.hasStaleStructure());
  EXPECT_FALSE(net.validate().ok());

  const RecoveryReport rep = net.repairAfterFailures();
  EXPECT_TRUE(rep.anyDamage());
  EXPECT_GE(rep.staleRemoved, 1u);
  EXPECT_FALSE(net.hasStaleStructure());
  EXPECT_TRUE(net.validate().ok());
  EXPECT_FALSE(net.clusterNet().contains(victim));
}

TEST(RecoveryTest, RepairIsIdempotent) {
  SensorNetwork net(smallConfig(9003));
  std::vector<NodeId> backbone = net.clusterNet().backboneNodes();
  std::erase(backbone, net.clusterNet().root());
  net.crashSensor(backbone[backbone.size() / 2]);
  net.repairAfterFailures();
  const RecoveryReport again = net.repairAfterFailures();
  EXPECT_FALSE(again.anyDamage());
  EXPECT_EQ(again.reattached, 0u);
  EXPECT_TRUE(net.validate().ok());
}

// Regression: a join that lands while the structure is stale (after a
// crash, before the batched repair — the exact shape of a churn tick)
// may promote a pure member whose own parent is the dead node. The
// promoted node's Procedure-1 repair then has no live parent to
// recalculate and must defer to the recovery pass instead of aborting.
TEST(RecoveryTest, JoinDuringStaleStructureToleratesDeadGrandparent) {
  NetworkConfig cfg;
  cfg.nodeCount = 0;
  SensorNetwork net(cfg);
  // A path 0 - 1 - 2 - 3 (spacing 40 < range 50): 0 root head, 1 member
  // promoted to gateway when 2 joined, 2 head, 3 pure member under 2.
  for (double x : {0.0, 40.0, 80.0, 120.0}) net.addSensor({x, 0.0});
  ASSERT_EQ(net.clusterNet().knowledge(3).status, NodeStatus::kPureMember);
  ASSERT_EQ(net.clusterNet().parent(3), NodeId{2});

  net.crashSensor(2);
  ASSERT_TRUE(net.hasStaleStructure());

  // The joiner hears only member 3 (in range of 3, out of range of the
  // rest): Definition-1 rule (c) promotes 3 to gateway, and 3's repair
  // runs against its dead parent. Before the stale-edge guard this threw
  // out of repairReceiver.
  bool joined = false;
  const NodeId j = net.addSensor({120.0, 45.0}, &joined);
  EXPECT_TRUE(joined);
  EXPECT_TRUE(net.clusterNet().contains(j));
  EXPECT_EQ(net.clusterNet().knowledge(3).status, NodeStatus::kGateway);

  // The recovery pass then owns the deferred repair; here it finds 3 and
  // j cut off from the root's component and orphans them cleanly.
  net.repairAfterFailures();
  EXPECT_FALSE(net.hasStaleStructure());
  EXPECT_TRUE(net.validate().ok());
  for (NodeId v : net.clusterNet().netNodes())
    EXPECT_TRUE(net.graph().isAlive(v));
}

TEST(RecoveryTest, RootCrashReseeds) {
  SensorNetwork net(smallConfig(9004));
  const NodeId oldRoot = net.clusterNet().root();
  net.crashSensor(oldRoot);
  const RecoveryReport rep = net.repairAfterFailures();
  EXPECT_TRUE(rep.rootReseeded);
  EXPECT_NE(net.clusterNet().root(), oldRoot);
  EXPECT_TRUE(net.validate().ok());
}

TEST(RecoveryTest, AutoRepairRestoresInvariantsImmediately) {
  NetworkConfig cfg = smallConfig(9005);
  cfg.autoRepair = true;
  SensorNetwork net(cfg);
  std::vector<NodeId> backbone = net.clusterNet().backboneNodes();
  std::erase(backbone, net.clusterNet().root());
  net.crashSensor(backbone.front());
  EXPECT_FALSE(net.hasStaleStructure());
  EXPECT_TRUE(net.validate().ok());
}

// The PR's acceptance property: crash 20% of the backbone, repair, and a
// reliable iCFF wave covers 100% of the alive nodes that remain in the
// (re-attached) structure — first on a clean channel, then under drops.
TEST(RecoveryTest, TwentyPercentBackboneCrashThenFullReliableCoverage) {
  SensorNetwork net(smallConfig(9006, 150));
  std::vector<NodeId> backbone = net.clusterNet().backboneNodes();
  std::erase(backbone, net.clusterNet().root());
  const std::size_t kills = backbone.size() / 5;
  ASSERT_GE(kills, 1u);
  for (std::size_t i = 0; i < kills; ++i)
    net.crashSensor(backbone[i * backbone.size() / kills]);

  EXPECT_TRUE(net.hasStaleStructure());
  const RecoveryReport rep = net.repairAfterFailures();
  EXPECT_EQ(rep.staleRemoved, kills);
  ASSERT_TRUE(net.validate().ok());

  // Every remaining net node is alive.
  for (NodeId v : net.clusterNet().netNodes())
    EXPECT_TRUE(net.graph().isAlive(v));

  const NodeId source = net.clusterNet().root();

  // Clean channel: the plain wave already reaches everyone.
  const auto clean = net.reliableBroadcast(BroadcastScheme::kImprovedCff,
                                          source, 0xDA7A);
  EXPECT_TRUE(clean.allDelivered());
  EXPECT_EQ(clean.repairRoundsUsed, 0);

  // Lossy channel: the NACK repair rounds close the gap to 100%.
  ReliableOptions lossy;
  lossy.base.dropProbability = 0.15;
  lossy.base.failureSeed = 0xBEEF;
  lossy.maxRepairRounds = 40;
  const auto run = net.reliableBroadcast(BroadcastScheme::kImprovedCff,
                                         source, 0xDA7A, lossy);
  EXPECT_EQ(run.intended, net.clusterNet().netSize());
  EXPECT_TRUE(run.allDelivered())
      << "residual uncovered: " << run.residualUncovered << " of "
      << run.intended;
  EXPECT_DOUBLE_EQ(run.coverage(), 1.0);
  EXPECT_GE(run.wave.coverage(), 0.0);
  EXPECT_GT(run.totalRounds, run.wave.sim.rounds);
}

// The whole crash → repair → reliable-broadcast pipeline must be
// bit-identical regardless of the worker count it is sharded across.
TEST(RecoveryTest, PipelineDeterministicAcrossJobs) {
  struct Signature {
    std::size_t pruned = 0;
    std::size_t netSize = 0;
    std::size_t delivered = 0;
    Round totalRounds = 0;
    std::size_t nacks = 0;
    bool operator==(const Signature&) const = default;
  };
  const std::size_t trials = 6;

  const auto runAll = [&](int jobs) {
    std::vector<Signature> out(trials);
    exec::forEachIndex(trials, jobs, [&](std::size_t t) {
      SensorNetwork net(smallConfig(0xC0DE + t, 120));
      std::vector<NodeId> backbone = net.clusterNet().backboneNodes();
      std::erase(backbone, net.clusterNet().root());
      for (std::size_t i = 0; i < backbone.size(); i += 6)
        net.crashSensor(backbone[i]);
      const RecoveryReport rep = net.repairAfterFailures();

      ReliableOptions ro;
      ro.base.dropProbability = 0.1;
      ro.base.failureSeed = 0xF00D + t;
      ro.maxRepairRounds = 12;
      const auto run = net.reliableBroadcast(
          BroadcastScheme::kImprovedCff, net.clusterNet().root(), 1, ro);
      out[t] = {rep.staleRemoved, net.clusterNet().netSize(),
                run.delivered, run.totalRounds, run.nacksSent};
    });
    return out;
  };

  const auto serial = runAll(1);
  const auto parallel = runAll(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t t = 0; t < trials; ++t)
    EXPECT_TRUE(serial[t] == parallel[t]) << "trial " << t << " diverged";
}

}  // namespace
}  // namespace dsn
