// Property-based sweeps: after EVERY node-move-in on randomly grown
// networks, the full invariant set (Definition 1, Property 1, Time-Slot
// Conditions, Lemma bounds, exact heights, root knowledge) must hold.
#include <gtest/gtest.h>

#include <tuple>

#include "cluster/backbone.hpp"
#include "cluster/validate.hpp"
#include "graph/algorithms.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

struct SweepParam {
  std::uint64_t seed;
  std::size_t n;
  int fieldUnits;
  double range;
  SlotPolicy policy;
};

class MoveInSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(MoveInSweep, InvariantsHoldAfterEveryInsertion) {
  const auto p = GetParam();
  Rng rng(p.seed);
  const DeployConfig dc{Field::squareUnits(p.fieldUnits), p.range, p.n};
  const auto pts = deployIncrementalAttach(dc, rng);
  Graph g = buildUnitDiskGraph(pts, p.range);
  ClusterNetConfig cfg;
  cfg.slotPolicy = p.policy;
  ClusterNet net(g, cfg);

  for (NodeId v = 0; v < pts.size(); ++v) {
    net.moveIn(v);
    // Validating after every insertion is the actual property; to keep
    // runtime sane validate every few steps plus the final state.
    if (v % 7 == 0 || v + 1 == pts.size()) {
      const auto report = ClusterNetValidator::validate(net);
      ASSERT_TRUE(report.ok())
          << "after inserting node " << v << ":\n"
          << report.summary();
    }
  }
  EXPECT_EQ(net.netSize(), p.n);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGrowth, MoveInSweep,
    ::testing::Values(
        SweepParam{101, 60, 8, 50.0, SlotPolicy::kStrict},
        SweepParam{102, 120, 10, 50.0, SlotPolicy::kStrict},
        SweepParam{103, 200, 10, 50.0, SlotPolicy::kStrict},
        SweepParam{104, 120, 12, 50.0, SlotPolicy::kStrict},
        SweepParam{105, 80, 4, 60.0, SlotPolicy::kStrict},   // dense
        SweepParam{106, 150, 16, 50.0, SlotPolicy::kStrict}, // sparse
        SweepParam{201, 60, 8, 50.0, SlotPolicy::kPaperLocal},
        SweepParam{202, 120, 10, 50.0, SlotPolicy::kPaperLocal},
        SweepParam{203, 200, 10, 50.0, SlotPolicy::kPaperLocal},
        SweepParam{204, 80, 4, 60.0, SlotPolicy::kPaperLocal}));

TEST(MoveInCostTest, AttachCostEqualsDegreeSum) {
  auto f = testutil::randomNet(7, 80);
  // Each insert charges exactly d_new = degree at insertion time; the
  // total must therefore be bounded by the final degree sum (degrees only
  // grow as later nodes arrive) and be positive.
  std::int64_t degreeSum = 0;
  for (NodeId v : f.graph->liveNodes())
    degreeSum += static_cast<std::int64_t>(f.graph->degree(v));
  EXPECT_GT(f.net->costs().attach, 0);
  EXPECT_LE(f.net->costs().attach, degreeSum);
}

TEST(MoveInCostTest, PerOperationCostWithinTheoremTwoBound) {
  // Theorem 2(2): knowledge-II upkeep adds O(2h + 2d + D) rounds per
  // insertion. Check each single insertion against a generous constant
  // multiple of that bound.
  Rng rng(31);
  const DeployConfig dc{Field::squareUnits(10), 50.0, 150};
  const auto pts = deployIncrementalAttach(dc, rng);
  Graph g = buildUnitDiskGraph(pts, 50.0);
  ClusterNet net(g);
  net.moveIn(0);
  for (NodeId v = 1; v < pts.size(); ++v) {
    const RoundCost before = net.costs();
    net.moveIn(v);
    const RoundCost delta = net.costs() - before;
    const auto stats = computeBackboneStats(net);
    const auto h = static_cast<std::int64_t>(stats.cnetHeight);
    const auto d = static_cast<std::int64_t>(stats.degreeBackbone);
    const auto D = static_cast<std::int64_t>(stats.degreeG);
    const std::int64_t dNew = static_cast<std::int64_t>(g.degree(v));
    // attach <= d_new; slot updates: up to ~5 procedure runs (b/l/u for
    // the leaf + promotion repairs), each 1 + listeners <= 1 + D; root
    // path traffic <= a few multiples of h.
    EXPECT_LE(delta.total(), dNew + 6 * (1 + D) + 8 * (h + 1) + 2 * d)
        << "insertion of node " << v;
  }
}

TEST(MoveInTest, HeightsStayExactUnderRandomGrowth) {
  auto f = testutil::randomNet(57, 140);
  // Validator already recomputes heights; spot-check the root height
  // equals the max depth over nodes.
  Depth maxDepth = 0;
  for (NodeId v : f.net->netNodes())
    maxDepth = std::max(maxDepth, f.net->depth(v));
  EXPECT_EQ(f.net->height(), maxDepth);
}

TEST(MoveInTest, BackboneSmallerThanNetwork) {
  auto f = testutil::randomNet(58, 200);
  const auto stats = computeBackboneStats(*f.net);
  EXPECT_LT(stats.backboneSize, stats.networkSize);
  EXPECT_LE(static_cast<std::size_t>(stats.backboneHeight),
            stats.backboneSize);
  EXPECT_GE(stats.cnetHeight, stats.backboneHeight);
}

TEST(MoveInTest, SlotsStayWellBelowLemmaBounds) {
  // Section 6 observation: measured slots are far below d(d+1)/2+1 and
  // D(D+1)/2+1 — in the simulation "even smaller than d and D".
  auto f = testutil::randomNet(59, 250);
  const auto stats = computeBackboneStats(*f.net);
  EXPECT_LE(stats.maxBSlot, stats.bSlotBound());
  EXPECT_LE(stats.maxLSlot, stats.lSlotBound());
  // The much tighter empirical claim (δ <= d, Δ <= D) — allow slack of 2x
  // to keep the property robust across seeds.
  EXPECT_LE(stats.maxBSlot, 2 * stats.degreeBackbone + 1);
  EXPECT_LE(stats.maxLSlot, 2 * stats.degreeG + 1);
}

}  // namespace
}  // namespace dsn
