// Slot compaction: windows tighten after churn and all invariants
// survive the sweep.
#include <gtest/gtest.h>

#include "cluster/validate.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

using testutil::randomNet;
using testutil::validationErrors;

TEST(CompactionTest, NoOpOnEmptyNet) {
  Graph g(1);
  ClusterNet net(g);
  EXPECT_EQ(net.compactSlots(), 0);
}

TEST(CompactionTest, FreshNetStaysValidAndExact) {
  auto f = randomNet(5001, 150);
  f.net->compactSlots();
  EXPECT_EQ(validationErrors(*f.net), "");
  // After compaction the root's knowledge is exact (the incremental
  // discipline only guarantees an upper bound).
  EXPECT_EQ(f.net->rootMaxBSlot(), f.net->trueMaxBSlot());
  EXPECT_EQ(f.net->rootMaxLSlot(), f.net->trueMaxLSlot());
  EXPECT_EQ(f.net->rootMaxUSlot(), f.net->trueMaxUSlot());
  EXPECT_EQ(f.net->rootMaxUpSlot(), f.net->trueMaxUpSlot());
}

TEST(CompactionTest, TightensWindowsAfterChurn) {
  auto f = randomNet(5002, 200);
  Rng rng(5002);
  for (int i = 0; i < 60; ++i) {
    const auto nodes = f.net->netNodes();
    if (nodes.size() <= 20) break;
    f.net->moveOut(nodes[rng.pickIndex(nodes)]);
  }
  const TimeSlot staleL = f.net->rootMaxLSlot();
  const TimeSlot staleUp = f.net->rootMaxUpSlot();
  f.net->compactSlots();
  EXPECT_EQ(validationErrors(*f.net), "");
  EXPECT_LE(f.net->rootMaxLSlot(), staleL);
  EXPECT_LE(f.net->rootMaxUpSlot(), staleUp);
  EXPECT_EQ(f.net->rootMaxLSlot(), f.net->trueMaxLSlot());
}

TEST(CompactionTest, StructureUnchangedOnlySlots) {
  auto f = randomNet(5003, 100);
  std::vector<NodeId> parentsBefore;
  for (NodeId v : f.net->netNodes())
    parentsBefore.push_back(v == f.net->root() ? kInvalidNode
                                               : f.net->parent(v));
  f.net->compactSlots();
  std::vector<NodeId> parentsAfter;
  for (NodeId v : f.net->netNodes())
    parentsAfter.push_back(v == f.net->root() ? kInvalidNode
                                              : f.net->parent(v));
  EXPECT_EQ(parentsBefore, parentsAfter);
}

TEST(CompactionTest, CostIsMetered) {
  auto f = randomNet(5004, 120);
  const auto rounds = f.net->compactSlots();
  EXPECT_GT(rounds, 0);
  // One procedure per node-ish: O(n·D) envelope.
  const auto n = static_cast<std::int64_t>(f.net->netSize());
  EXPECT_LE(rounds, n * 200);
}

TEST(CompactionTest, BroadcastStillDeliversAfterCompaction) {
  auto f = randomNet(5005, 150);
  Rng rng(5005);
  for (int i = 0; i < 30; ++i) {
    const auto nodes = f.net->netNodes();
    f.net->moveOut(nodes[rng.pickIndex(nodes)]);
  }
  f.net->compactSlots();
  EXPECT_EQ(validationErrors(*f.net), "");
}

}  // namespace
}  // namespace dsn
