// Negative tests: the validator must actually DETECT broken structures.
// The graph is mutable from outside the ClusterNet, so structural
// properties can be invalidated after construction — exactly what a
// physical topology change without a reconfiguration pass would do.
#include <gtest/gtest.h>

#include "cluster/validate.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

TEST(ValidatorNegativeTest, AdjacentHeadsAreFlagged) {
  // Build 0-1-2 (head, gw, head), then physically move the heads into
  // range of each other (add edge 0-2 post-hoc).
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  ClusterNet net(g);
  net.buildAll({0, 1, 2});
  ASSERT_TRUE(ClusterNetValidator::validate(net).ok());

  g.addEdge(0, 2);
  const auto report = ClusterNetValidator::validate(net);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("Property 1(2)"), std::string::npos);
  EXPECT_TRUE(report.has("head-adjacency"));
  EXPECT_EQ(report.countOf("head-adjacency"), 1u);
  EXPECT_EQ(report.nodesOf("head-adjacency"), std::vector<NodeId>{0});
}

TEST(ValidatorNegativeTest, RemovedTreeEdgeIsFlagged) {
  Graph g(2);
  g.addEdge(0, 1);
  ClusterNet net(g);
  net.buildAll({0, 1});
  g.removeEdge(0, 1);
  const auto report = ClusterNetValidator::validate(net);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("not a graph edge"), std::string::npos);
  EXPECT_TRUE(report.has("tree"));
}

TEST(ValidatorNegativeTest, UndominatedNodeIsFlagged) {
  // Member 2 hangs off head 0; removing that radio edge leaves 2
  // undominated (and its tree edge gone).
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  ClusterNet net(g);
  net.buildAll({0, 1, 2});
  g.removeEdge(0, 2);
  const auto report = ClusterNetValidator::validate(net);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("not dominated"), std::string::npos);
  EXPECT_TRUE(report.has("domination"));
  const auto nodes = report.nodesOf("domination");
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes.front(), 2u);
}

TEST(ValidatorNegativeTest, SlotConditionBreakIsFlagged) {
  // Two heads share a member's neighborhood. After construction, fuse
  // the interference landscape by adding a new same-slot transmitter
  // next to the member: physically moving a backbone node into range
  // of a member can jam its only unique provider.
  auto f = testutil::randomNet(2024, 120);
  Graph& g = *f.graph;
  ClusterNet& net = *f.net;
  ASSERT_TRUE(ClusterNetValidator::validate(net).ok());

  // Find a member v with exactly one l-interferer (its head) and some
  // backbone node x elsewhere with the same l-slot; connect x to v.
  bool mutated = false;
  for (NodeId v : net.pureMembers()) {
    const auto inter = net.lInterferers(v);
    if (inter.size() != 1) continue;
    const TimeSlot slot = net.lSlot(inter.front());
    for (NodeId x : net.backboneNodes()) {
      if (x == inter.front() || g.hasEdge(x, v)) continue;
      if (net.lSlot(x) == slot && net.depth(x) != net.depth(v)) {
        g.addEdge(x, v);
        mutated = true;
        break;
      }
    }
    if (mutated) break;
  }
  if (!mutated) GTEST_SKIP() << "topology draw offered no jamming pair";

  const auto report = ClusterNetValidator::validate(net);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("Condition"), std::string::npos);
  EXPECT_TRUE(report.has("slot-condition"));
}

TEST(ValidatorNegativeTest, EmptyNetWithoutRootIsOk) {
  Graph g(3);
  ClusterNet net(g);
  EXPECT_TRUE(ClusterNetValidator::validate(net).ok());
}

}  // namespace
}  // namespace dsn
