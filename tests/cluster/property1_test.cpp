// Property 1 verified EXACTLY against its NP-hard quantities on small
// unit-disk graphs:
//   (1) #clusters ≤ p and |BT(G)| ≤ 2p−1, p = minimum clique cover;
//   (3) #clusters ≤ 5·|MDS| on unit-disk graphs.
#include <gtest/gtest.h>

#include "cluster/backbone.hpp"
#include "graph/algorithms.hpp"
#include "graph/exact.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

class Property1Exact : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Property1Exact, CliqueCoverBoundHolds) {
  const auto seed = GetParam();
  Rng rng(seed);
  const DeployConfig dc{Field::squareUnits(3), 80.0, 14};
  const auto pts = deployIncrementalAttach(dc, rng);
  auto f = testutil::buildNet(pts, dc.range);

  const auto p = exactMinimumCliqueCover(*f.graph).size();
  const std::size_t clusters = f.net->clusterCount();
  const std::size_t bt = f.net->backboneNodes().size();
  EXPECT_LE(clusters, p) << "seed " << seed;
  EXPECT_LE(bt, 2 * p - 1) << "seed " << seed;
}

TEST_P(Property1Exact, UnitDiskMdsBoundHolds) {
  const auto seed = GetParam();
  Rng rng(seed ^ 0xFEED);
  const DeployConfig dc{Field::squareUnits(4), 70.0, 20};
  const auto pts = deployIncrementalAttach(dc, rng);
  auto f = testutil::buildNet(pts, dc.range);

  const auto mds = exactMinimumDominatingSet(*f.graph).size();
  EXPECT_LE(f.net->clusterCount(), 5 * mds) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Property1Exact,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u, 9u, 10u));

TEST(Property1ExactTest, BoundHoldsUnderChurnToo) {
  Rng rng(99);
  const DeployConfig dc{Field::squareUnits(3), 80.0, 14};
  const auto pts = deployIncrementalAttach(dc, rng);
  auto f = testutil::buildNet(pts, dc.range);
  // Remove a few nodes; the structure reconfigures; Property 1 must
  // hold for the surviving graph.
  for (int i = 0; i < 4; ++i) {
    const auto nodes = f.net->netNodes();
    if (nodes.size() <= 5) break;
    f.net->moveOut(nodes[rng.pickIndex(nodes)]);
  }
  // Restrict the graph view to nodes still in the net (orphans are not
  // part of the structure's claim).
  const auto netNodes = f.net->netNodes();
  const Graph induced = inducedSubgraph(*f.graph, netNodes);
  const auto p = exactMinimumCliqueCover(induced).size();
  EXPECT_LE(f.net->clusterCount(), p);
  EXPECT_LE(f.net->backboneNodes().size(), 2 * p - 1);
}

}  // namespace
}  // namespace dsn
