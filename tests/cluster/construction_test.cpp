// Construction orders (gossip/BFS, paper Section 5) and multi-sink root
// selection (Section 2).
#include <gtest/gtest.h>

#include <set>

#include "cluster/construction.hpp"
#include "cluster/validate.hpp"
#include "graph/algorithms.hpp"
#include "tests/cluster/cluster_test_util.hpp"

namespace dsn {
namespace {

TEST(ConstructionTest, BfsOrderCoversComponentOnce) {
  Graph g(6);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(0, 3);
  g.addEdge(4, 5);  // separate component
  const auto order = bfsConstructionOrder(g, 0);
  EXPECT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 0u);
  const std::set<NodeId> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), order.size());
  EXPECT_FALSE(unique.count(4));
}

TEST(ConstructionTest, EveryPrefixIsAttachable) {
  Rng rng(42);
  const DeployConfig dc{Field::squareUnits(8), 50.0, 120};
  const auto pts = deployIncrementalAttach(dc, rng);
  const Graph g = buildUnitDiskGraph(pts, dc.range);
  const auto order = bfsConstructionOrder(g, 7);
  ASSERT_EQ(order.size(), 120u);
  // Each node after the first is adjacent to an earlier one.
  std::set<NodeId> placed{order.front()};
  for (std::size_t i = 1; i < order.size(); ++i) {
    bool attachable = false;
    for (NodeId u : g.neighbors(order[i]))
      attachable |= placed.count(u) != 0;
    EXPECT_TRUE(attachable) << "position " << i;
    placed.insert(order[i]);
  }
}

TEST(ConstructionTest, GossipOrderBuildsValidNet) {
  Rng rng(43);
  const DeployConfig dc{Field::squareUnits(10), 50.0, 200};
  const auto pts = deployIncrementalAttach(dc, rng);
  Graph g = buildUnitDiskGraph(pts, dc.range);
  ClusterNet net(g);
  net.buildAll(bfsConstructionOrder(g, 55));
  EXPECT_EQ(net.netSize(), 200u);
  EXPECT_EQ(net.root(), 55u);
  const auto report = ClusterNetValidator::validate(net);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(ConstructionTest, GossipRoundsIsLinear) {
  Graph g(37);
  EXPECT_EQ(gossipRounds(g), 37);
  g.removeNode(0);
  EXPECT_EQ(gossipRounds(g), 36);
}

TEST(ConstructionTest, DeadRootRejected) {
  Graph g(2);
  g.removeNode(0);
  EXPECT_THROW(bfsConstructionOrder(g, 0), PreconditionError);
}

TEST(SpreadRootsTest, RootsAreDistinctAndSpread) {
  auto f = testutil::randomNet(44, 150);
  const auto roots = selectSpreadRoots(*f.graph, 0, 3);
  ASSERT_EQ(roots.size(), 3u);
  const std::set<NodeId> unique(roots.begin(), roots.end());
  EXPECT_EQ(unique.size(), 3u);
  // The second root is a farthest node from the first.
  const auto d0 = bfsDistances(*f.graph, roots[0]);
  int maxDist = 0;
  for (int d : d0) maxDist = std::max(maxDist, d);
  EXPECT_EQ(d0[roots[1]], maxDist);
}

TEST(SpreadRootsTest, RequestMoreThanNodesSaturates) {
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  const auto roots = selectSpreadRoots(g, 0, 10);
  EXPECT_LE(roots.size(), 3u);
  EXPECT_GE(roots.size(), 2u);
}

TEST(SpreadRootsTest, SingleRoot) {
  Graph g(2);
  g.addEdge(0, 1);
  EXPECT_EQ(selectSpreadRoots(g, 1, 1), std::vector<NodeId>{1});
}

}  // namespace
}  // namespace dsn
