// ChurnEngine: sustained churn ends every tick validator-clean, and the
// adaptive policy trades incremental repairs for rebuilds as configured.
#include <gtest/gtest.h>

#include "core/sensor_network.hpp"
#include "mobility/churn.hpp"
#include "mobility/model.hpp"

namespace dsn::mobility {
namespace {

NetworkConfig denseNetwork(std::size_t n, std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.field = Field::squareUnits(4);  // 400 m x 400 m at 50 m range
  cfg.nodeCount = n;
  cfg.seed = seed;
  return cfg;
}

ChurnConfig churnConfig(RepairPolicy policy) {
  ChurnConfig cfg;
  cfg.crashRate = 0.4;
  cfg.joinRate = 0.4;
  cfg.leaveRate = 0.2;
  cfg.policy = policy;
  cfg.field = Field::squareUnits(4);
  return cfg;
}

TEST(ChurnEngineTest, SustainedChurnStaysValidatorClean) {
  SensorNetwork net(denseNetwork(70, 0xC1));
  WaypointConfig wc;
  wc.field = Field::squareUnits(4);
  wc.speed = 15.0;
  wc.period = 4;
  RandomWaypointModel model(wc);
  for (NodeId v : net.clusterNet().netNodes()) model.track(v, net.position(v));

  ChurnEngine engine(net, &model, churnConfig(RepairPolicy::kIncremental));
  for (Round r = 0; r < 300; ++r) engine.tick(r);

  const ChurnTotals& t = engine.totals();
  EXPECT_EQ(t.ticks, 300u);
  EXPECT_GT(t.moves, 0u);
  EXPECT_GT(t.crashes, 0u);
  EXPECT_GT(t.joins, 0u);
  EXPECT_GT(t.leaves, 0u);
  EXPECT_GT(t.repairs, 0u);
  EXPECT_GT(t.validations, 0u);
  EXPECT_EQ(t.validationFailures, 0u);
  EXPECT_FALSE(net.hasStaleStructure());
  EXPECT_TRUE(net.validate().ok());
}

TEST(ChurnEngineTest, IncrementalPolicyNeverRebuilds) {
  SensorNetwork net(denseNetwork(60, 0xC2));
  ChurnEngine engine(net, nullptr, churnConfig(RepairPolicy::kIncremental));
  for (Round r = 0; r < 200; ++r) engine.tick(r);
  EXPECT_EQ(engine.totals().rebuilds, 0u);
  EXPECT_EQ(engine.totals().rebuildCost, 0);
  EXPECT_GT(engine.totals().incrementalCost, 0);
}

TEST(ChurnEngineTest, RebuildPolicyRebuildsOnStructuralTicks) {
  SensorNetwork net(denseNetwork(60, 0xC3));
  ChurnConfig cfg = churnConfig(RepairPolicy::kRebuild);
  cfg.crashRate = 1.0;  // every tick is structural
  cfg.joinRate = 1.0;
  ChurnEngine engine(net, nullptr, cfg);
  for (Round r = 0; r < 20; ++r) engine.tick(r);
  EXPECT_EQ(engine.totals().rebuilds, 20u);
  EXPECT_GT(engine.totals().rebuildCost, 0);
  EXPECT_EQ(engine.totals().validationFailures, 0u);
}

TEST(ChurnEngineTest, AdaptivePolicyRebuildsWhenDebtExceedsThreshold) {
  SensorNetwork net(denseNetwork(60, 0xC4));
  ChurnConfig cfg = churnConfig(RepairPolicy::kAdaptive);
  cfg.debtFactor = 0.05;  // tiny threshold: debt trips quickly
  ChurnEngine engine(net, nullptr, cfg);
  for (Round r = 0; r < 300; ++r) engine.tick(r);
  EXPECT_GT(engine.totals().rebuilds, 0u);
  EXPECT_EQ(engine.totals().validationFailures, 0u);
}

TEST(ChurnEngineTest, AdaptiveWithHugeThresholdStaysIncremental) {
  SensorNetwork net(denseNetwork(60, 0xC5));
  ChurnConfig cfg = churnConfig(RepairPolicy::kAdaptive);
  cfg.debtFactor = 1e9;
  ChurnEngine engine(net, nullptr, cfg);
  for (Round r = 0; r < 200; ++r) engine.tick(r);
  EXPECT_EQ(engine.totals().rebuilds, 0u);
  EXPECT_GT(engine.debt(), 0.0);
}

TEST(ChurnEngineTest, DeterministicReplay) {
  const auto run = [] {
    SensorNetwork net(denseNetwork(50, 0xC6));
    ChurnEngine engine(net, nullptr, churnConfig(RepairPolicy::kAdaptive));
    for (Round r = 0; r < 150; ++r) engine.tick(r);
    return engine.totals();
  };
  const ChurnTotals a = run();
  const ChurnTotals b = run();
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.joins, b.joins);
  EXPECT_EQ(a.leaves, b.leaves);
  EXPECT_EQ(a.repairs, b.repairs);
  EXPECT_EQ(a.rebuilds, b.rebuilds);
  EXPECT_EQ(a.incrementalCost, b.incrementalCost);
  EXPECT_EQ(a.rebuildCost, b.rebuildCost);
}

}  // namespace
}  // namespace dsn::mobility
