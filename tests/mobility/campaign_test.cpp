// Mobility campaigns: broadcasts in flight over sustained churn.
//
// The acceptance-shaped checks at test scale (the full 1e5-round
// campaign runs in tbl_mobility and the churn-smoke CI job): the digest
// is bit-identical across scheduling modes and thread counts, every
// repair leaves the structure validator-clean, and union coverage of
// settled receivers clears the 99% gate.
#include <gtest/gtest.h>

#include "core/sensor_network.hpp"
#include "mobility/campaign.hpp"

namespace dsn::mobility {
namespace {

CampaignResult runCampaign(int threads, Round rounds = 3000) {
  NetworkConfig nc;
  nc.field = Field::squareUnits(4);
  nc.nodeCount = 80;
  nc.seed = 0xCA4A;
  SensorNetwork net(nc);

  WaypointConfig wc;
  wc.field = Field::squareUnits(4);
  wc.speed = 20.0;
  wc.period = 32;
  RandomWaypointModel model(wc);
  for (NodeId v : net.clusterNet().netNodes()) model.track(v, net.position(v));

  ChurnConfig cc;
  cc.crashRate = 0.05;
  cc.joinRate = 0.05;
  cc.leaveRate = 0.03;
  cc.policy = RepairPolicy::kAdaptive;
  cc.field = Field::squareUnits(4);
  ChurnEngine engine(net, &model, cc);

  CampaignConfig cfg;
  cfg.rounds = rounds;
  cfg.wavePeriod = 150;
  cfg.churnPeriod = 8;
  cfg.protocol.threads = threads;
  if (threads > 0) cfg.protocol.shardSerialThreshold = 0;
  return runMobilityCampaign(net, engine, cfg);
}

TEST(MobilityCampaignTest, SustainsCoverageAndValidationUnderChurn) {
  const CampaignResult res = runCampaign(/*threads=*/0);
  EXPECT_GT(res.waves, 10u);
  EXPECT_EQ(res.roundsRun, 3000);
  EXPECT_GT(res.churn.moves, 0u);
  EXPECT_GT(res.churn.crashes + res.churn.leaves, 0u);
  EXPECT_GT(res.churn.repairs, 0u);
  EXPECT_TRUE(res.validatorClean());
  EXPECT_GE(res.effectiveCoverage(), 0.99);
  // Union coverage only adds to what the primary waves delivered.
  EXPECT_GE(res.settledCovered, res.settledFirstWave);
  EXPECT_LE(res.settledCovered, res.settled);
  EXPECT_GE(res.effectiveCoverage(), res.firstWaveCoverage());
  // The three-way split is a partition of the intended receivers.
  EXPECT_EQ(res.intended, res.departed + res.displaced + res.settled);
}

TEST(MobilityCampaignTest, DigestBitIdenticalAcrossThreadCounts) {
  const CampaignResult ref = runCampaign(/*threads=*/0, /*rounds=*/1500);
  for (const int threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const CampaignResult got = runCampaign(threads, /*rounds=*/1500);
    EXPECT_EQ(got.digest, ref.digest);
    EXPECT_EQ(got.waves, ref.waves);
    EXPECT_EQ(got.intended, ref.intended);
    EXPECT_EQ(got.delivered, ref.delivered);
    EXPECT_EQ(got.settledCovered, ref.settledCovered);
    EXPECT_EQ(got.repairWavesRun, ref.repairWavesRun);
    EXPECT_EQ(got.churn.moves, ref.churn.moves);
    EXPECT_EQ(got.churn.rebuilds, ref.churn.rebuilds);
  }
}

TEST(MobilityCampaignTest, DeterministicAcrossProcessRepeats) {
  const CampaignResult a = runCampaign(/*threads=*/0, /*rounds=*/1000);
  const CampaignResult b = runCampaign(/*threads=*/0, /*rounds=*/1000);
  EXPECT_EQ(a.digest, b.digest);
}

}  // namespace
}  // namespace dsn::mobility
