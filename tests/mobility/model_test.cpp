// Mobility models: deterministic replay, kinematics, bookkeeping.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mobility/model.hpp"

namespace dsn::mobility {
namespace {

double dist(const Point2D& a, const Point2D& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

bool inField(const Point2D& p, const Field& f) {
  return p.x >= 0.0 && p.x <= f.width && p.y >= 0.0 && p.y <= f.height;
}

WaypointConfig waypointConfig() {
  WaypointConfig cfg;
  cfg.field = Field{400.0, 400.0};
  cfg.speed = 12.0;
  return cfg;
}

TEST(RandomWaypointModelTest, ReplaysBitIdentically) {
  RandomWaypointModel a(waypointConfig());
  RandomWaypointModel b(waypointConfig());
  for (NodeId v = 0; v < 10; ++v) {
    a.track(v, {10.0 * v, 5.0 * v});
    b.track(v, {10.0 * v, 5.0 * v});
  }
  std::vector<MobilityUpdate> ua, ub;
  for (Round r = 0; r < 50; ++r) {
    ua.clear();
    ub.clear();
    a.updates(r, ua);
    b.updates(r, ub);
    ASSERT_EQ(ua.size(), ub.size()) << "round " << r;
    for (std::size_t i = 0; i < ua.size(); ++i) {
      EXPECT_EQ(ua[i].node, ub[i].node);
      EXPECT_EQ(ua[i].to, ub[i].to);
    }
  }
}

TEST(RandomWaypointModelTest, StepsAreSpeedBoundedAndInField) {
  const WaypointConfig cfg = waypointConfig();
  RandomWaypointModel m(cfg);
  std::vector<Point2D> at;
  for (NodeId v = 0; v < 8; ++v) {
    at.push_back({50.0 + 30.0 * v, 200.0});
    m.track(v, at.back());
  }
  std::vector<MobilityUpdate> out;
  for (Round r = 0; r < 200; ++r) {
    out.clear();
    m.updates(r, out);
    ASSERT_EQ(out.size(), 8u);
    for (const MobilityUpdate& u : out) {
      EXPECT_LE(dist(at[u.node], u.to), cfg.speed + 1e-9);
      EXPECT_TRUE(inField(u.to, cfg.field));
      at[u.node] = u.to;
    }
  }
}

TEST(RandomWaypointModelTest, PeriodGatesEmission) {
  WaypointConfig cfg = waypointConfig();
  cfg.period = 4;
  RandomWaypointModel m(cfg);
  m.track(0, {100.0, 100.0});
  std::vector<MobilityUpdate> out;
  for (Round r = 0; r < 16; ++r) {
    out.clear();
    m.updates(r, out);
    EXPECT_EQ(out.size(), r % 4 == 0 ? 1u : 0u) << "round " << r;
  }
}

TEST(RandomWaypointModelTest, ForgetDropsTheNode) {
  RandomWaypointModel m(waypointConfig());
  m.track(3, {10.0, 10.0});
  m.track(7, {20.0, 20.0});
  EXPECT_EQ(m.trackedCount(), 2u);
  m.forget(3);
  EXPECT_EQ(m.trackedCount(), 1u);
  std::vector<MobilityUpdate> out;
  m.updates(0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].node, 7u);
}

TEST(GroupMobilityModelTest, MembersTravelTogether) {
  GroupMobilityConfig cfg;
  cfg.field = Field{500.0, 500.0};
  cfg.speed = 10.0;
  cfg.jitter = 2.0;
  GroupMobilityModel m(cfg);
  m.addGroup({{0, {100.0, 100.0}}, {1, {110.0, 100.0}}, {2, {105.0, 110.0}}});

  std::vector<MobilityUpdate> out;
  for (Round r = 0; r < 100; ++r) {
    out.clear();
    m.updates(r, out);
    ASSERT_EQ(out.size(), 3u);
    // Pairwise spread stays near the initial offsets: at most the
    // original separation plus jitter on both ends.
    for (std::size_t i = 0; i < out.size(); ++i)
      for (std::size_t j = i + 1; j < out.size(); ++j)
        EXPECT_LE(dist(out[i].to, out[j].to), 20.0 + 2.0 * cfg.jitter + 1e-9);
    for (const MobilityUpdate& u : out)
      EXPECT_TRUE(inField(u.to, cfg.field));
  }
}

TEST(GroupMobilityModelTest, ReplaysBitIdentically) {
  GroupMobilityConfig cfg;
  cfg.field = Field{300.0, 300.0};
  const auto members = std::vector<std::pair<NodeId, Point2D>>{
      {4, {40.0, 60.0}}, {9, {60.0, 60.0}}};
  GroupMobilityModel a(cfg);
  GroupMobilityModel b(cfg);
  a.addGroup(members);
  b.addGroup(members);
  std::vector<MobilityUpdate> ua, ub;
  for (Round r = 0; r < 40; ++r) {
    ua.clear();
    ub.clear();
    a.updates(r, ua);
    b.updates(r, ub);
    ASSERT_EQ(ua.size(), ub.size());
    for (std::size_t i = 0; i < ua.size(); ++i) EXPECT_EQ(ua[i].to, ub[i].to);
  }
}

TEST(ScriptedMobilityModelTest, EmitsInRoundOrderAfterOutOfOrderSchedule) {
  ScriptedMobilityModel m;
  m.schedule(5, 1, {10.0, 10.0});
  m.schedule(2, 2, {20.0, 20.0});
  m.schedule(5, 3, {30.0, 30.0});
  m.schedule(2, 4, {40.0, 40.0});
  EXPECT_EQ(m.pendingCount(), 4u);

  std::vector<MobilityUpdate> out;
  m.updates(2, out);
  ASSERT_EQ(out.size(), 2u);
  // Stable sort: same-round entries keep schedule order.
  EXPECT_EQ(out[0].node, 2u);
  EXPECT_EQ(out[1].node, 4u);

  out.clear();
  m.updates(5, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].node, 1u);
  EXPECT_EQ(out[1].node, 3u);
  EXPECT_EQ(m.pendingCount(), 0u);
}

TEST(ScriptedMobilityModelTest, SkipsPastRoundsAndForgetsNodes) {
  ScriptedMobilityModel m;
  m.schedule(1, 1, {1.0, 1.0});
  m.schedule(3, 2, {2.0, 2.0});
  m.schedule(4, 2, {3.0, 3.0});
  m.forget(2);
  std::vector<MobilityUpdate> out;
  m.updates(3, out);  // round 1's entry is in the past, node 2 forgotten
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(m.pendingCount(), 0u);
}

}  // namespace
}  // namespace dsn::mobility
